// The paper's contribution: cost-benefit predictive prefetching ("tree").
//
// Each access period (Sections 4 and 7):
//   1. enumerate prefetch candidates from the tree with their path
//      probabilities and pick the highest-benefit block (Eq. 1);
//   2. price the cheapest replacement victim (Eq. 11 vs Eq. 13);
//   3. prefetch while  B(b) - T_oh >= C  (Eq. 14 overhead), repeating
//      until the inequality fails or the per-period issue cap is hit.
//
// s, the average number of prefetches per access period, feeds back into
// the stall model (Eq. 6) through an online estimate updated at the end
// of every period.
#pragma once

#include "core/policy/cost_benefit.hpp"
#include "core/policy/tree_base.hpp"
#include "core/tree/enumerator.hpp"

namespace pfp::core::policy {

struct TreePolicyConfig {
  tree::TreeConfig tree;
  tree::EnumeratorLimits limits;
  /// Hard cap on prefetches per access period; a safety net, normally the
  /// cost-benefit inequality stops the loop first.
  std::uint32_t max_prefetches_per_period = 16;
  RefetchDistanceRule refetch = RefetchDistanceRule::kHorizon;
  ReclaimRule reclaim = ReclaimRule::kCostBased;
};

class TreeCostBenefit : public TreeInstrumentedPrefetcher {
 public:
  TreeCostBenefit();  // default config
  explicit TreeCostBenefit(TreePolicyConfig config);

  [[nodiscard]] std::string name() const override { return "tree"; }
  void on_access(BlockId block, AccessOutcome outcome,
                 Context& ctx) override;
  void reclaim_for_demand(Context& ctx) override;

  [[nodiscard]] const TreePolicyConfig& config() const noexcept { return config_; }

  /// Cache-path counters of the policy's candidate enumerator.
  [[nodiscard]] const tree::CandidateEnumerator::CacheStats&
  enumeration_cache_stats() const noexcept {
    return enumerator_.cache_stats();
  }

  /// SIM_AUDIT >= 1: every reusable cached candidate list must reproduce
  /// a fresh enumeration bit-for-bit (no-op otherwise).
  void audit_enumeration_cache() const { enumerator_.audit(tree_); }

 protected:
  /// Minimum path probability a candidate must carry to be considered
  /// this period.  The base policy imposes none beyond the enumerator's
  /// static cutoff; tree-adaptive overrides this with its feedback floor.
  [[nodiscard]] virtual double probability_floor() const noexcept { return 0.0; }

  /// Introspection (predictions_into) enumerates with the controller's
  /// configured limits, matching what run_cost_benefit prices.
  [[nodiscard]] tree::EnumeratorLimits prediction_limits() const override {
    return config_.limits;
  }

  /// Runs selection/pricing/decision for this period via the shared
  /// run_cost_benefit_loop; returns the number of prefetches issued
  /// (callers fold it into the s estimate).
  std::uint32_t run_cost_benefit(Context& ctx);

  /// Evicts one buffer according to the configured reclaim rule.
  void reclaim_one(Context& ctx);

  TreePolicyConfig config_;
  /// Reused across access periods so the per-access hot path performs no
  /// heap allocation once the buffers reach steady-state size.
  tree::CandidateEnumerator enumerator_;
  std::vector<std::pair<double, std::size_t>> order_;
  std::vector<double> dtpf_;  ///< per-period Eq. 2 table (BenefitTable)
};

}  // namespace pfp::core::policy
