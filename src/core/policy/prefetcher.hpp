// Prefetching policy interface.
//
// The simulator drives each trace reference through the buffer cache and
// then hands the observed outcome to the policy, which may issue
// prefetches and is responsible for choosing replacement victims — both
// when it wants room for a prefetch and when the simulator needs room for
// a demand fetch (Figure 2's reclaim arrows are policy decisions, not
// cache mechanics).
//
// Predictor state is generic: a policy that learns exposes its durable
// predictor through an opaque, versioned, self-describing byte stream
// (save/load) plus a family tag, and enumerates its current predictions
// into caller storage in the controller's candidate vocabulary
// (costben::PredictedBlock).  The engine's snapshot layer and any
// introspection tool see every predictor family — LZ tree, delta-Markov
// chain, association miner — through this one surface; no predictor type
// leaks into the interface.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/costben/candidate.hpp"
#include "core/policy/context.hpp"

namespace pfp::core::policy {

enum class AccessOutcome {
  kDemandHit,    ///< found in the demand cache
  kPrefetchHit,  ///< found in the prefetch cache (migrated on reference)
  kMiss,         ///< demand fetch required
};

/// Predictor-family tags ("FourCC" codes).  A policy with durable
/// predictor state reports exactly one of these; snapshot streams record
/// the tag so a blob can never be restored into the wrong family.
constexpr std::uint32_t fourcc(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24);
}

/// Stateless policies (no durable predictor).
constexpr std::uint32_t kPredictorNone = 0;
/// The LZ prefetch tree family (core/tree).
constexpr std::uint32_t kPredictorTree = fourcc('L', 'Z', 'T', 'R');
/// Pangloss-style delta-Markov chain (core/markov).
constexpr std::uint32_t kPredictorMarkov = fourcc('M', 'R', 'K', 'V');
/// MITHRIL-style sporadic-association miner (core/assoc).
constexpr std::uint32_t kPredictorAssoc = fourcc('A', 'S', 'S', 'C');

/// Human-readable name for a predictor tag ("tree", "markov", "assoc",
/// "none", or "0x...." for unknown tags) — for error messages.
std::string predictor_tag_name(std::uint32_t tag);

class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  /// Stable identifier ("tree", "next-limit", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once per trace reference, after the cache state reflects the
  /// access (hit promoted / prefetch migrated / missed block admitted).
  /// This is where policies learn and issue prefetches.
  virtual void on_access(BlockId block, AccessOutcome outcome,
                         Context& ctx) = 0;

  /// Called on a demand miss with a full cache: evict exactly one buffer
  /// (from either cache) so the fetched block can be admitted.
  virtual void reclaim_for_demand(Context& ctx) = 0;

  /// Called when a prefetched block is referenced (before on_access).
  /// Default: records the hit with the h estimators.
  virtual void on_prefetch_consumed(const cache::PrefetchEntry& entry,
                                    Context& ctx);

  // --- generic predictor-state interface ---------------------------------

  /// Which predictor family this policy persists (kPredictorNone when the
  /// policy keeps no durable predictor state).  Engine snapshots record
  /// the tag next to the opaque blob.
  [[nodiscard]] virtual std::uint32_t predictor_state_tag() const;

  /// Serializes the predictor state as an opaque, versioned stream (each
  /// family writes its own magic + version header).  Only meaningful when
  /// predictor_state_tag() != kPredictorNone; the default implementation
  /// writes nothing.
  virtual void save_predictor_state(std::ostream& out) const;

  /// Restores state written by save_predictor_state() of the same family.
  /// Throws std::runtime_error on malformed input; returns false when the
  /// policy keeps no predictor state to restore into.
  virtual bool load_predictor_state(std::istream& in);

  /// Appends the predictor's current candidates — what it would consider
  /// prefetching right now — to `out` in the controller's generic
  /// vocabulary, most probable first.  Caller owns (and clears) the
  /// storage; returns the number of candidates appended.  Stateless
  /// policies append nothing.  Introspection only: never on the per-access
  /// hot path.
  virtual std::size_t predictions_into(
      std::vector<costben::PredictedBlock>& out) const;
};

}  // namespace pfp::core::policy
