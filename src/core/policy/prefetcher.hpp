// Prefetching policy interface.
//
// The simulator drives each trace reference through the buffer cache and
// then hands the observed outcome to the policy, which may issue
// prefetches and is responsible for choosing replacement victims — both
// when it wants room for a prefetch and when the simulator needs room for
// a demand fetch (Figure 2's reclaim arrows are policy decisions, not
// cache mechanics).
#pragma once

#include <string>

#include "core/policy/context.hpp"

namespace pfp::core::tree {
class PrefetchTree;
}  // namespace pfp::core::tree

namespace pfp::core::policy {

enum class AccessOutcome {
  kDemandHit,    ///< found in the demand cache
  kPrefetchHit,  ///< found in the prefetch cache (migrated on reference)
  kMiss,         ///< demand fetch required
};

class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  /// Stable identifier ("tree", "next-limit", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once per trace reference, after the cache state reflects the
  /// access (hit promoted / prefetch migrated / missed block admitted).
  /// This is where policies learn and issue prefetches.
  virtual void on_access(BlockId block, AccessOutcome outcome,
                         Context& ctx) = 0;

  /// Called on a demand miss with a full cache: evict exactly one buffer
  /// (from either cache) so the fetched block can be admitted.
  virtual void reclaim_for_demand(Context& ctx) = 0;

  /// Called when a prefetched block is referenced (before on_access).
  /// Default: records the hit with the h estimators.
  virtual void on_prefetch_consumed(const cache::PrefetchEntry& entry,
                                    Context& ctx);

  /// The policy's persistent predictor state (the LZ prefetch tree), or
  /// nullptr for policies without one.  Engine snapshots serialize it.
  [[nodiscard]] virtual const tree::PrefetchTree* predictor_tree() const;

  /// Replaces the predictor tree (engine snapshot restore).  Returns
  /// false when the policy has no tree to restore into.
  virtual bool restore_predictor_tree(tree::PrefetchTree tree);
};

}  // namespace pfp::core::policy
