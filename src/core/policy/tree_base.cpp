#include "core/policy/tree_base.hpp"

#include <utility>

namespace pfp::core::policy {

TreeInstrumentedPrefetcher::TreeInstrumentedPrefetcher(
    tree::TreeConfig config)
    : tree_(config) {}

std::uint32_t TreeInstrumentedPrefetcher::predictor_state_tag() const {
  return kPredictorTree;
}

void TreeInstrumentedPrefetcher::save_predictor_state(
    std::ostream& out) const {
  tree_.serialize(out);
}

bool TreeInstrumentedPrefetcher::load_predictor_state(std::istream& in) {
  // Move-assignment keeps the incoming tree's uid, so epoch-keyed
  // enumerator caches can never confuse the restored structure with the
  // one it replaces (see PrefetchTree's uid semantics).
  tree_ = tree::PrefetchTree::deserialize(in, tree_.config());
  return true;
}

tree::EnumeratorLimits TreeInstrumentedPrefetcher::prediction_limits()
    const {
  return tree::EnumeratorLimits{};
}

std::size_t TreeInstrumentedPrefetcher::predictions_into(
    std::vector<costben::PredictedBlock>& out) const {
  // Introspection path, not the per-access loop: a one-shot fresh
  // enumeration keeps this const and cache-neutral.
  const std::vector<tree::Candidate> candidates =
      tree::enumerate_candidates(tree_, tree_.current(), prediction_limits());
  out.reserve(out.size() + candidates.size());
  for (const tree::Candidate& c : candidates) {
    out.push_back(costben::PredictedBlock{c.block, c.probability,
                                          c.parent_probability, c.depth});
  }
  return candidates.size();
}

tree::AccessInfo TreeInstrumentedPrefetcher::observe_access(
    BlockId block, AccessOutcome outcome, Context& ctx) {
  const tree::AccessInfo info = tree_.access(block);

  // Table 2: the access was predictable if it matched a child of the
  // pre-access parse position.  Figure 14 additionally asks whether such
  // predictable blocks were already resident — `outcome` tells us, since
  // it reflects the cache state at access time.
  if (info.predictable) {
    ++ctx.metrics.predictable;
    if (outcome == AccessOutcome::kMiss) {
      ++ctx.metrics.predictable_uncached;
    }
  }
  // Table 3: successive visits through a node's last-visited child.
  if (info.had_lvc) {
    ++ctx.metrics.lvc_opportunities;
    if (info.followed_lvc) {
      ++ctx.metrics.lvc_followed;
    }
  }
  // Figure 16: at the new parse position, is the block the last-visited
  // child points at already cached?  This is exactly what a tree-lvc
  // prefetch attempt would discover (Section 9.6).
  const tree::NodeId lvc = tree_.last_visited_child(tree_.current());
  if (lvc != tree::kNoNode) {
    ++ctx.metrics.lvc_checks;
    if (ctx.cache.contains(tree_.block(lvc))) {
      ++ctx.metrics.lvc_cached;
    }
  }

  ctx.metrics.tree_nodes = tree_.node_count();
  ctx.metrics.tree_bytes = tree_.approx_memory_bytes();
  util::phase_mark(ctx.phases, util::EnginePhase::kPredictorUpdate);
  return info;
}

}  // namespace pfp::core::policy
