#include "core/policy/factory.hpp"

#include <stdexcept>

#include "core/policy/next_limit.hpp"
#include "core/policy/no_prefetch.hpp"
#include "core/policy/perfect_selector.hpp"
#include "core/policy/tree_children.hpp"
#include "core/policy/tree_lvc.hpp"
#include "core/policy/tree_next_limit.hpp"
#include "core/policy/tree_threshold.hpp"

namespace pfp::core::policy {

const std::vector<PolicyKind>& headline_policies() {
  static const std::vector<PolicyKind> kAll = {
      PolicyKind::kNoPrefetch, PolicyKind::kNextLimit, PolicyKind::kTree,
      PolicyKind::kTreeNextLimit};
  return kAll;
}

const std::vector<PolicyKind>& all_policy_kinds() {
  static const std::vector<PolicyKind> kAll = {
      PolicyKind::kNoPrefetch,      PolicyKind::kNextLimit,
      PolicyKind::kTree,            PolicyKind::kTreeNextLimit,
      PolicyKind::kTreeLvc,         PolicyKind::kPerfectSelector,
      PolicyKind::kTreeThreshold,   PolicyKind::kTreeChildren,
      PolicyKind::kProbGraph,       PolicyKind::kTreeAdaptive,
      PolicyKind::kMarkov,          PolicyKind::kAssoc,
  };
  return kAll;
}

std::string kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoPrefetch:
      return "no-prefetch";
    case PolicyKind::kNextLimit:
      return "next-limit";
    case PolicyKind::kTree:
      return "tree";
    case PolicyKind::kTreeNextLimit:
      return "tree-next-limit";
    case PolicyKind::kTreeLvc:
      return "tree-lvc";
    case PolicyKind::kPerfectSelector:
      return "perfect-selector";
    case PolicyKind::kTreeThreshold:
      return "tree-threshold";
    case PolicyKind::kTreeChildren:
      return "tree-children";
    case PolicyKind::kProbGraph:
      return "prob-graph";
    case PolicyKind::kTreeAdaptive:
      return "tree-adaptive";
    case PolicyKind::kMarkov:
      return "markov";
    case PolicyKind::kAssoc:
      return "assoc";
  }
  return "?";
}

PolicyKind kind_from_name(const std::string& name) {
  for (const PolicyKind kind : all_policy_kinds()) {
    if (kind_name(kind) == name) {
      return kind;
    }
  }
  throw std::invalid_argument("unknown policy '" + name + "'");
}

namespace {

// !(value in range) instead of direct comparison so NaN is rejected too.
void require_fraction(double value, const char* field) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(std::string("PolicySpec: ") + field +
                                " must be in [0, 1] (got " +
                                std::to_string(value) + ")");
  }
}

}  // namespace

void validate_spec(const PolicySpec& spec) {
  require_fraction(spec.obl_quota, "obl_quota");
  require_fraction(spec.threshold, "threshold");
  require_fraction(spec.graph.min_probability, "graph.min_probability");
  if (spec.children == 0) {
    throw std::invalid_argument(
        "PolicySpec: children must be at least 1");
  }
  if (spec.tree.max_prefetches_per_period == 0) {
    throw std::invalid_argument(
        "PolicySpec: tree.max_prefetches_per_period must be at least 1");
  }
  require_fraction(spec.markov.limits.min_probability,
                   "markov.limits.min_probability");
  if (spec.markov.model.max_contexts == 0 ||
      spec.markov.model.row_width == 0) {
    throw std::invalid_argument(
        "PolicySpec: markov.model bounds must be at least 1");
  }
  if (spec.markov.model.max_count < 2) {
    throw std::invalid_argument(
        "PolicySpec: markov.model.max_count must be at least 2");
  }
  if (spec.markov.max_prefetches_per_period == 0) {
    throw std::invalid_argument(
        "PolicySpec: markov.max_prefetches_per_period must be at least 1");
  }
  require_fraction(spec.assoc.limits.min_probability,
                   "assoc.limits.min_probability");
  if (spec.assoc.miner.lookahead == 0 ||
      spec.assoc.miner.window <= spec.assoc.miner.lookahead) {
    throw std::invalid_argument(
        "PolicySpec: assoc.miner.window must exceed assoc.miner.lookahead "
        "(both at least 1)");
  }
  if (spec.assoc.miner.row_width == 0 || spec.assoc.miner.max_rows == 0) {
    throw std::invalid_argument(
        "PolicySpec: assoc.miner bounds must be at least 1");
  }
  if (spec.assoc.miner.age_threshold < 2) {
    throw std::invalid_argument(
        "PolicySpec: assoc.miner.age_threshold must be at least 2");
  }
  if (spec.assoc.max_prefetches_per_period == 0) {
    throw std::invalid_argument(
        "PolicySpec: assoc.max_prefetches_per_period must be at least 1");
  }
}

// Construction happens once per simulation, never per access, so the
// hot-path allocation ban does not apply here.  lint: allow-file(hot-alloc)
std::unique_ptr<Prefetcher> make_prefetcher(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicyKind::kNoPrefetch:
      return std::make_unique<NoPrefetch>();
    case PolicyKind::kNextLimit:
      return std::make_unique<NextLimit>(spec.obl_quota);
    case PolicyKind::kTree:
      return std::make_unique<TreeCostBenefit>(spec.tree);
    case PolicyKind::kTreeNextLimit:
      return std::make_unique<TreeNextLimit>(spec.tree, spec.obl_quota);
    case PolicyKind::kTreeLvc:
      return std::make_unique<TreeLvc>(spec.tree);
    case PolicyKind::kPerfectSelector:
      return std::make_unique<PerfectSelector>(spec.tree.tree);
    case PolicyKind::kTreeThreshold:
      return std::make_unique<TreeThreshold>(spec.threshold, spec.tree.tree);
    case PolicyKind::kTreeChildren:
      return std::make_unique<TreeChildren>(spec.children, spec.tree.tree);
    case PolicyKind::kProbGraph:
      return std::make_unique<ProbGraph>(spec.graph);
    case PolicyKind::kTreeAdaptive:
      return std::make_unique<TreeAdaptive>(spec.tree, spec.adaptive);
    case PolicyKind::kMarkov:
      return std::make_unique<MarkovCostBenefit>(spec.markov);
    case PolicyKind::kAssoc:
      return std::make_unique<AssocCostBenefit>(spec.assoc);
  }
  throw std::invalid_argument("unknown policy kind");
}

}  // namespace pfp::core::policy
