#include "core/policy/tree_adaptive.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pfp::core::policy {

TreeAdaptive::TreeAdaptive() : TreeAdaptive(TreePolicyConfig{}, {}) {}

TreeAdaptive::TreeAdaptive(TreePolicyConfig tree_config,
                           AdaptiveConfig adaptive)
    : TreeCostBenefit(tree_config),
      adaptive_(adaptive),
      floor_(adaptive.initial_floor) {
  PFP_REQUIRE(adaptive_.min_floor > 0.0);
  PFP_REQUIRE(adaptive_.min_floor <= adaptive_.initial_floor);
  PFP_REQUIRE(adaptive_.initial_floor <= adaptive_.max_floor);
  PFP_REQUIRE(adaptive_.h_low < adaptive_.h_high);
  PFP_REQUIRE(adaptive_.tighten_factor > 1.0);
  PFP_REQUIRE(adaptive_.relax_factor < 1.0);
}

void TreeAdaptive::on_access(BlockId block, AccessOutcome outcome,
                             Context& ctx) {
  // Feedback before this period's decisions: h is the EWMA fate of past
  // tree prefetches (hits vs ejected-unused).
  const double h = ctx.estimators.h();
  if (h < adaptive_.h_low) {
    floor_ = std::min(floor_ * adaptive_.tighten_factor,
                      adaptive_.max_floor);
  } else if (h > adaptive_.h_high) {
    floor_ = std::max(floor_ * adaptive_.relax_factor, adaptive_.min_floor);
  }
  TreeCostBenefit::on_access(block, outcome, ctx);
}

}  // namespace pfp::core::policy
