// Policy construction from a declarative spec.
//
// Benches and examples describe a run as data (kind + parameters); the
// factory turns that into a live Prefetcher.  Keeping the spec a value
// type lets the sweep driver fan specs out across threads.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policy/assoc_policy.hpp"
#include "core/policy/markov_policy.hpp"
#include "core/policy/prefetcher.hpp"
#include "core/policy/prob_graph.hpp"
#include "core/policy/tree_adaptive.hpp"
#include "core/policy/tree_policy.hpp"

namespace pfp::core::policy {

enum class PolicyKind {
  kNoPrefetch,
  kNextLimit,
  kTree,
  kTreeNextLimit,
  kTreeLvc,
  kPerfectSelector,
  kTreeThreshold,
  kTreeChildren,
  kProbGraph,  ///< first-order probability graph (related-work baseline)
  kTreeAdaptive,  ///< tree + adaptive precision floor (paper future work)
  kMarkov,  ///< delta-Markov chain under the cost-benefit controller
  kAssoc,   ///< association miner under the cost-benefit controller
};

struct PolicySpec {
  PolicyKind kind = PolicyKind::kNoPrefetch;
  TreePolicyConfig tree;          ///< tree/cost-benefit parameters
  double obl_quota = 0.10;        ///< next-limit cache fraction
  double threshold = 0.05;        ///< tree-threshold parameter
  std::uint32_t children = 3;     ///< tree-children parameter
  ProbGraphConfig graph;          ///< prob-graph parameters
  AdaptiveConfig adaptive;        ///< tree-adaptive parameters
  MarkovPolicyConfig markov;      ///< markov parameters
  AssocPolicyConfig assoc;        ///< assoc parameters
};

/// The four headline schemes of Section 9.1, in paper order.
const std::vector<PolicyKind>& headline_policies();

/// Every PolicyKind, in enum order — the source of truth for exhaustive
/// sweeps and for kind_from_name's reverse lookup.
const std::vector<PolicyKind>& all_policy_kinds();

/// Stable name for a kind ("tree-next-limit", ...); parametric kinds get
/// their parameter appended by the live policy's name() instead.
std::string kind_name(PolicyKind kind);

/// Inverse of kind_name; throws std::invalid_argument on junk.
PolicyKind kind_from_name(const std::string& name);

/// Engine-construction path: rejects parameter values no policy can run
/// with (quota/threshold outside [0, 1], zero children, NaNs) with a
/// std::invalid_argument naming the field.  engine::validate() calls this
/// before any policy is built, so misconfiguration fails loudly at
/// construction instead of as UB mid-run.
void validate_spec(const PolicySpec& spec);

std::unique_ptr<Prefetcher> make_prefetcher(const PolicySpec& spec);

}  // namespace pfp::core::policy
