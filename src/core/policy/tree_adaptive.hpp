// tree-adaptive: the paper's stated future work, implemented.
//
// Section 9.2.2: "Since the prefetch cache hit rate is relatively low, we
// are working on strategies to reduce the number of blocks prefetched by
// eliminating mispredicted blocks."  This variant adds a feedback loop on
// top of the cost-benefit controller: a dynamic probability floor that
// rises while the measured tree-prefetch hit ratio h is poor (squeezing
// out speculative candidates) and relaxes while h is comfortably high.
// bench/abl05_adaptive_precision compares it with plain tree.
#pragma once

#include "core/policy/tree_policy.hpp"

namespace pfp::core::policy {

struct AdaptiveConfig {
  double h_low = 0.50;       ///< tighten the floor below this hit ratio
  double h_high = 0.85;      ///< relax the floor above this hit ratio
  double initial_floor = 0.02;
  double min_floor = 0.005;
  double max_floor = 0.60;
  double tighten_factor = 1.10;  ///< floor *= this when h < h_low
  double relax_factor = 0.95;    ///< floor *= this when h > h_high
};

class TreeAdaptive final : public TreeCostBenefit {
 public:
  TreeAdaptive();  // default configs
  TreeAdaptive(TreePolicyConfig tree_config, AdaptiveConfig adaptive);

  [[nodiscard]] std::string name() const override { return "tree-adaptive"; }
  void on_access(BlockId block, AccessOutcome outcome,
                 Context& ctx) override;

  [[nodiscard]] double probability_floor() const noexcept override { return floor_; }

 private:
  AdaptiveConfig adaptive_;
  double floor_;
};

}  // namespace pfp::core::policy
