#include "core/policy/tree_next_limit.hpp"

namespace pfp::core::policy {

TreeNextLimit::TreeNextLimit()
    : TreeNextLimit(TreePolicyConfig{}, /*quota_fraction=*/0.10) {}

TreeNextLimit::TreeNextLimit(TreePolicyConfig config, double quota_fraction)
    : TreeCostBenefit(config), lookahead_(quota_fraction) {}

void TreeNextLimit::on_access(BlockId block, AccessOutcome outcome,
                              Context& ctx) {
  observe_access(block, outcome, ctx);
  std::uint32_t issued = 0;
  if (outcome == AccessOutcome::kMiss ||
      outcome == AccessOutcome::kPrefetchHit) {
    if (lookahead_.maybe_prefetch_next(block, ctx)) {
      ++issued;
    }
  }
  issued += run_cost_benefit(ctx);
  ctx.estimators.end_period(issued);
}

}  // namespace pfp::core::policy
