#include "core/policy/tree_policy.hpp"

namespace pfp::core::policy {

TreeCostBenefit::TreeCostBenefit() : TreeCostBenefit(TreePolicyConfig{}) {}

TreeCostBenefit::TreeCostBenefit(TreePolicyConfig config)
    : TreeInstrumentedPrefetcher(config.tree), config_(config) {}

void TreeCostBenefit::on_access(BlockId block, AccessOutcome outcome,
                                Context& ctx) {
  observe_access(block, outcome, ctx);
  const std::uint32_t issued = run_cost_benefit(ctx);
  ctx.estimators.end_period(issued);
}

void TreeCostBenefit::reclaim_one(Context& ctx) {
  reclaim_by_rule(config_.reclaim, ctx);
}

void TreeCostBenefit::reclaim_for_demand(Context& ctx) {
  // Section 6.2: the same cost equations pick the replacement victim for
  // demand fetches (unless an ablation overrides the rule).
  reclaim_one(ctx);
}

std::uint32_t TreeCostBenefit::run_cost_benefit(Context& ctx) {
  const auto candidates =
      enumerator_.enumerate(tree_, tree_.current(), config_.limits);
  util::phase_mark(ctx.phases, util::EnginePhase::kEnumeration);
  CostBenefitKnobs knobs;
  knobs.max_depth = config_.limits.max_depth;
  knobs.max_prefetches_per_period = config_.max_prefetches_per_period;
  knobs.probability_floor = probability_floor();
  knobs.refetch = config_.refetch;
  return run_cost_benefit_loop(candidates, knobs, ctx, order_, dtpf_,
                               [this](Context& c) { reclaim_one(c); });
}

}  // namespace pfp::core::policy
