#include "core/policy/tree_policy.hpp"

#include <algorithm>

#include "core/costben/equations.hpp"
#include "core/policy/eviction.hpp"

namespace pfp::core::policy {

TreeCostBenefit::TreeCostBenefit() : TreeCostBenefit(TreePolicyConfig{}) {}

TreeCostBenefit::TreeCostBenefit(TreePolicyConfig config)
    : TreeInstrumentedPrefetcher(config.tree), config_(config) {}

void TreeCostBenefit::on_access(BlockId block, AccessOutcome outcome,
                                Context& ctx) {
  observe_access(block, outcome, ctx);
  const std::uint32_t issued = run_cost_benefit(ctx);
  ctx.estimators.end_period(issued);
}

void TreeCostBenefit::reclaim_one(Context& ctx) {
  switch (config_.reclaim) {
    case ReclaimRule::kCostBased:
      evict_cheapest(ctx);
      return;
    case ReclaimRule::kPrefetchFirst:
      evict_prefetch_first(ctx);
      return;
    case ReclaimRule::kDemandFirst:
      evict_demand_first(ctx);
      return;
  }
}

void TreeCostBenefit::reclaim_for_demand(Context& ctx) {
  // Section 6.2: the same cost equations pick the replacement victim for
  // demand fetches (unless an ablation overrides the rule).
  reclaim_one(ctx);
}

void TreeCostBenefit::admit_tree_prefetch(Context& ctx,
                                          const tree::Candidate& candidate) {
  const double s = ctx.estimators.s();
  // Re-prefetch distance x for Eq. 11: by default a displaced block would
  // be fetched again once it comes within the prefetch horizon (see
  // DESIGN.md); ablation rules pin x to the extremes.
  std::uint32_t x = 0;
  switch (config_.refetch) {
    case RefetchDistanceRule::kHorizon:
      x = std::min(candidate.depth - 1,
                   costben::prefetch_horizon(ctx.timing, s));
      break;
    case RefetchDistanceRule::kParentDepth:
      x = candidate.depth - 1;
      break;
    case RefetchDistanceRule::kImmediate:
      x = 0;
      break;
  }
  cache::PrefetchEntry entry;
  entry.block = candidate.block;
  entry.probability = candidate.probability;
  entry.depth = candidate.depth;
  entry.eject_cost = costben::cost_eject_prefetch(
      ctx.timing, s, candidate.probability, candidate.depth, x);
  entry.obl = false;
  entry.issued_period = ctx.period;
  entry.completion_ms = ctx.disks.submit(candidate.block, ctx.now_ms);
  ctx.cache.admit_prefetch(entry);
  ++ctx.metrics.prefetches_issued;
  ++ctx.metrics.tree_prefetches_issued;
  ctx.metrics.sum_prefetch_probability += candidate.probability;
}

std::uint32_t TreeCostBenefit::run_cost_benefit(Context& ctx) {
  const auto candidates =
      enumerator_.enumerate(tree_, tree_.current(), config_.limits);
  util::phase_mark(ctx.phases, util::EnginePhase::kEnumeration);
  if (candidates.empty()) {
    return 0;
  }
  // s is an EWMA refreshed once per access period, so benefits are fixed
  // within the loop: tabulate dT_pf once and process best-first.
  const double s = ctx.estimators.s();
  const costben::BenefitTable benefit_of(ctx.timing, s,
                                         config_.limits.max_depth, dtpf_);
  const double floor = probability_floor();
  order_.clear();
  order_.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    if (c.probability < floor) {
      continue;  // below the (possibly adaptive) precision floor
    }
    const double b = benefit_of(c.probability, c.parent_probability, c.depth);
    if (b > 0.0) {
      order_.emplace_back(b, i);
    }
  }
  std::sort(order_.begin(), order_.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  util::phase_mark(ctx.phases, util::EnginePhase::kCostBenefit);

  std::uint32_t issued = 0;
  for (const auto& [benefit_value, index] : order_) {
    if (issued >= config_.max_prefetches_per_period) {
      break;
    }
    const auto& candidate = candidates[index];
    ++ctx.metrics.candidates_chosen;
    if (ctx.cache.contains(candidate.block)) {
      // Figure 7: chosen, but already resident in one of the caches.
      ++ctx.metrics.candidates_already_cached;
      continue;
    }
    const double overhead = costben::prefetch_overhead(
        ctx.timing, candidate.probability, candidate.parent_probability);
    const double cost = ctx.cache.free_buffers() > 0
                            ? 0.0
                            : cheapest_eviction_cost(ctx);
    if (benefit_value - overhead < cost) {
      // Section 7 step 4: stop once replacing a block costs more than
      // prefetching the next-best block gains.
      break;
    }
    if (ctx.cache.free_buffers() == 0) {
      reclaim_one(ctx);
    }
    admit_tree_prefetch(ctx, candidate);
    ++issued;
  }
  return issued;
}

}  // namespace pfp::core::policy
