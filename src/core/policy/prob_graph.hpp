// prob-graph: first-order probability-graph prefetching.
//
// A related-work baseline in the spirit of Griffioen & Appleton's
// "Reducing File System Latency Using a Predictive Approach" (the
// paper's reference [6], simplified to a one-access lookahead window):
// for every block keep counts of which blocks immediately followed it,
// and after each access prefetch the successors whose observed chance
// exceeds a threshold.  Unlike the LZ tree this keeps no context deeper
// than one block, so it confuses interleaved streams — comparing the two
// predictors is bench/abl02_predictor_duel.
#pragma once

#include <cstdint>
#include <vector>

#include "core/policy/prefetcher.hpp"
#include "util/flat_map.hpp"

namespace pfp::core::policy {

struct ProbGraphConfig {
  double min_probability = 0.2;    ///< successor chance cutoff
  std::uint32_t max_prefetches = 4;
  /// Successor lists are capped; the weakest edge is dropped when a new
  /// successor appears in a full list (keeps memory linear in blocks).
  std::uint32_t max_successors = 16;
};

class ProbGraph final : public Prefetcher {
 public:
  ProbGraph();  // default config
  explicit ProbGraph(ProbGraphConfig config);

  [[nodiscard]] std::string name() const override { return "prob-graph"; }
  void on_access(BlockId block, AccessOutcome outcome,
                 Context& ctx) override;
  void reclaim_for_demand(Context& ctx) override;

  /// Observed P(next == successor | current == block); 0 if unknown.
  [[nodiscard]] double successor_probability(BlockId block, BlockId successor) const;

  [[nodiscard]] std::size_t tracked_blocks() const noexcept { return graph_.size(); }

 private:
  struct Edge {
    BlockId successor = 0;
    std::uint32_t count = 0;
  };
  struct Node {
    std::uint64_t total = 0;          ///< departures observed from here
    std::vector<Edge> edges;          ///< sorted by count, descending
  };

  void record_transition(BlockId from, BlockId to);

  ProbGraphConfig config_;
  util::FlatMap<BlockId, Node> graph_;
  BlockId previous_ = 0;
  bool has_previous_ = false;
};

}  // namespace pfp::core::policy
