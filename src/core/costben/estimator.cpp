#include "core/costben/estimator.hpp"

namespace pfp::core::costben {

Estimators::Estimators() : Estimators(Config{}) {}

Estimators::Estimators(Config config)
    : s_(config.s_alpha, config.s_initial),
      h_(config.h_alpha, config.h_initial),
      obl_h_(config.h_alpha, config.h_initial) {}

void Estimators::end_period(std::uint32_t issued) {
  s_.add(static_cast<double>(issued));
  ++periods_;
}

void Estimators::prefetch_outcome(bool accessed, bool obl) {
  (obl ? obl_h_ : h_).add(accessed ? 1.0 : 0.0);
}

}  // namespace pfp::core::costben
