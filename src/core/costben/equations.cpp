#include "core/costben/equations.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace pfp::core::costben {

double t_compute(const TimingParams& timing, double s, std::uint32_t d) {
  PFP_DASSERT(d > 0);
  return static_cast<double>(d) *
         (timing.t_cpu + timing.t_hit + s * timing.t_driver);
}

double t_stall(const TimingParams& timing, double s, std::uint32_t d) {
  if (d == 0) {
    return timing.t_disk;  // demand fetch stalls for the whole access
  }
  const double per_period = timing.t_hit + timing.t_cpu + s * timing.t_driver;
  return std::max(timing.t_disk / static_cast<double>(d) - per_period, 0.0);
}

double delta_t_pf(const TimingParams& timing, double s, std::uint32_t d) {
  if (d == 0) {
    return 0.0;  // dT_pf(b, 0) = 0: a demand fetch saves nothing
  }
  return timing.t_disk - t_stall(timing, s, d);
}

double benefit(const TimingParams& timing, double s, double p_b, double p_x,
               std::uint32_t d_b) {
  PFP_DASSERT(d_b >= 1);
  PFP_DASSERT(p_b >= 0.0 && p_b <= p_x + 1e-12);
  return p_b * delta_t_pf(timing, s, d_b) -
         p_x * delta_t_pf(timing, s, d_b - 1);
}

BenefitTable::BenefitTable(const TimingParams& timing, double s,
                           std::uint32_t max_depth,
                           std::vector<double>& storage) {
  storage.resize(static_cast<std::size_t>(max_depth) + 1);
  for (std::uint32_t d = 0; d <= max_depth; ++d) {
    storage[d] = delta_t_pf(timing, s, d);
  }
  dtpf_ = storage.data();
  max_depth_ = max_depth;
}

double prefetch_overhead(const TimingParams& timing, double p_b, double p_x) {
  PFP_DASSERT(p_x > 0.0);
  const double conditional = std::min(p_b / p_x, 1.0);
  return (1.0 - conditional) * timing.t_driver;
}

double cost_eject_prefetch(const TimingParams& timing, double s, double p_b,
                           std::uint32_t d_b, std::uint32_t x) {
  PFP_DASSERT(d_b > x);
  const double bufferage = static_cast<double>(d_b - x);
  return p_b * (timing.t_driver + t_stall(timing, s, x)) / bufferage;
}

double cost_eject_demand(const TimingParams& timing,
                         double marginal_hit_rate) {
  return marginal_hit_rate * (timing.t_driver + timing.t_disk);
}

std::uint32_t prefetch_horizon(const TimingParams& timing, double s) {
  const double per_period = timing.t_hit + timing.t_cpu + s * timing.t_driver;
  PFP_DASSERT(per_period > 0.0);
  return static_cast<std::uint32_t>(
      std::ceil(timing.t_disk / per_period));
}

}  // namespace pfp::core::costben
