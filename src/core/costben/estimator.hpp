// Online estimators for the dynamic model inputs (Figure 4).
//
// The block diagram's dynamically calculated inputs are s (blocks
// prefetched per access period) and h (fraction of prefetched blocks that
// are eventually accessed); the paper computes both "during execution".
// Both are EWMAs here: s is sampled once per access period with the
// number of prefetches the controller issued; h is sampled per prefetched
// block when its fate is known (referenced -> 1, ejected unused -> 0).
// A separate hit-rate estimate is kept for one-block-lookahead blocks so
// the combined tree-next-limit policy can price OBL entries' ejection.
#pragma once

#include <cstdint>

#include "util/ewma.hpp"

namespace pfp::core::costben {

class Estimators {
 public:
  struct Config {
    double s_alpha = 0.05;    ///< horizon ~20 access periods
    double s_initial = 1.0;   ///< optimistic start: one prefetch/period
    double h_alpha = 0.02;    ///< horizon ~50 prefetch outcomes
    double h_initial = 0.5;
  };

  Estimators();  // default config
  explicit Estimators(Config config);

  /// Records how many prefetches were issued this access period.
  void end_period(std::uint32_t issued);

  /// Records the fate of one prefetched block.
  void prefetch_outcome(bool accessed, bool obl);

  /// Current estimate of s (>= 0).
  [[nodiscard]] double s() const noexcept { return s_.value(); }
  /// Current estimate of h in [0, 1] (tree-predicted blocks).
  [[nodiscard]] double h() const noexcept { return h_.value(); }
  /// Current OBL hit-ratio estimate in [0, 1].
  [[nodiscard]] double obl_h() const noexcept { return obl_h_.value(); }

  [[nodiscard]] std::uint64_t periods() const noexcept { return periods_; }

 private:
  util::Ewma s_;
  util::Ewma h_;
  util::Ewma obl_h_;
  std::uint64_t periods_ = 0;
};

}  // namespace pfp::core::costben
