// System timing model (Sections 3 and 8).
//
// All durations are milliseconds.  Defaults are the paper's constants,
// which it in turn takes from Patterson: T_hit = 0.243 ms,
// T_driver = 0.580 ms, T_disk = 15.0 ms, T_cpu = 50 ms (Section 9.2.3
// sweeps T_cpu from 20 to 640 ms).
#pragma once

namespace pfp::core::costben {

struct TimingParams {
  double t_hit = 0.243;    ///< read a block already in the buffer cache
  double t_driver = 0.580; ///< initiate a fetch (buffer, queue, interrupt)
  double t_disk = 15.0;    ///< constant disk access time
  double t_cpu = 50.0;     ///< mean computation between I/Os

  /// T_miss = T_driver + T_disk + T_hit (Section 6.2).
  [[nodiscard]] double t_miss() const noexcept { return t_driver + t_disk + t_hit; }
};

}  // namespace pfp::core::costben
