// The paper's cost-benefit equations (Sections 5-7), as pure functions.
//
// Everything here is stateless: inputs are the timing constants, the
// dynamic prefetch rate s (blocks prefetched per access period, estimated
// online), and per-candidate quantities from the prefetch tree.  Keeping
// the algebra free of simulator state lets tests check each equation
// against hand-computed values.
//
//   Eq. 3  T_compute(d)   = d (T_cpu + T_hit + s T_driver)
//   Eq. 6  T_stall(d)     = max(T_disk/d - (T_hit + T_cpu + s T_driver), 0)
//                           with T_stall(0) = T_disk (demand fetch)
//   Eq. 2  dT_pf(d)       = T_disk - T_stall(d), dT_pf(0) = 0
//   Eq. 1  B(b)           = p_b dT_pf(d_b) - p_x dT_pf(d_b - 1)
//   Eq. 11 C_pr(b)        = p_b (T_driver + T_stall(x)) / (d_b - x)
//   Eq. 13 C_dc(n)        = (H(n) - H(n-1)) (T_driver + T_disk)
//   Eq. 14 T_oh           = (1 - p_b/p_x) T_driver
#pragma once

#include <cstdint>
#include <vector>

#include "core/costben/timing_model.hpp"
#include "util/assert.hpp"

namespace pfp::core::costben {

/// Eq. 3: computation overlapped during d access periods (d > 0).
double t_compute(const TimingParams& timing, double s, std::uint32_t d);

/// Eq. 6 (with the d = 0 demand-fetch boundary condition T_stall = T_disk):
/// average CPU stall for a block prefetched d accesses ahead.
double t_stall(const TimingParams& timing, double s, std::uint32_t d);

/// Eq. 2: time saved by prefetching at distance d vs. fetching on demand.
double delta_t_pf(const TimingParams& timing, double s, std::uint32_t d);

/// Eq. 1: benefit of allocating one buffer to prefetch block b at depth
/// d_b, whose path-parent x (at depth d_b - 1) has path probability p_x.
double benefit(const TimingParams& timing, double s, double p_b,
               double p_x, std::uint32_t d_b);

/// Eq. 1 through a per-period table.  dT_pf depends only on (timing, s,
/// d), and s is an EWMA refreshed once per access period — so a policy
/// pricing dozens of candidates per period precomputes dT_pf for
/// d = 0..max_depth and reduces every benefit to two multiplies.
/// Bit-identical to benefit(): the same delta_t_pf() values feed the same
/// expression in the same order.
class BenefitTable {
 public:
  /// Fills `storage` with dT_pf(0..max_depth) for this period and keeps a
  /// view of it.  The buffer is caller-owned so policies reuse one vector
  /// across periods allocation-free; it must outlive the table.
  BenefitTable(const TimingParams& timing, double s, std::uint32_t max_depth,
               std::vector<double>& storage);

  [[nodiscard]] double operator()(double p_b, double p_x,
                                  std::uint32_t d_b) const {
    PFP_DASSERT(d_b >= 1 && d_b <= max_depth_);
    PFP_DASSERT(p_b >= 0.0 && p_b <= p_x + 1e-12);
    return p_b * dtpf_[d_b] - p_x * dtpf_[d_b - 1];
  }

  /// dT_pf(b, d) itself.  Eq. 1's second term assumes the candidate will
  /// be offered again at depth d-1 next period; single-offer predictors
  /// (see CostBenefitKnobs::single_offer) price against the demand fetch
  /// the block otherwise becomes, which is this value times p_b.
  [[nodiscard]] double dtpf(std::uint32_t d_b) const {
    PFP_DASSERT(d_b <= max_depth_);
    return dtpf_[d_b];
  }

 private:
  const double* dtpf_;
  std::uint32_t max_depth_;
};

/// Eq. 14: expected wasted driver time for prefetching b under parent x.
double prefetch_overhead(const TimingParams& timing, double p_b, double p_x);

/// Eq. 11: cost (per unit bufferage) of ejecting prefetched block b that
/// would be re-prefetched at distance x < d_b.
double cost_eject_prefetch(const TimingParams& timing, double s, double p_b,
                           std::uint32_t d_b, std::uint32_t x);

/// Eq. 13: cost of shrinking the demand cache by one buffer, given the
/// measured marginal hit rate H(n) - H(n-1).
double cost_eject_demand(const TimingParams& timing,
                         double marginal_hit_rate);

/// Prefetch horizon P-hat: smallest distance whose expected stall is zero,
/// ceil(T_disk / (T_hit + T_cpu + s T_driver)).  Used as the re-prefetch
/// distance x in Eq. 11 (a displaced block would be fetched again once it
/// comes within the horizon; see DESIGN.md).
std::uint32_t prefetch_horizon(const TimingParams& timing, double s);

}  // namespace pfp::core::costben
