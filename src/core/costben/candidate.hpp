// The controller's generic candidate vocabulary.
//
// The cost-benefit controller (Eq. 1-14) is predictor-agnostic: every
// decision it makes consumes only a block id, a path probability p_b, the
// parent-path probability p_x, and a prefetch distance d_b.  This struct
// names that contract so predictor families (LZ tree, delta-Markov chain,
// sporadic-association miner) can feed the same controller without the
// controller knowing any of their types.  costben/ must stay free of
// predictor includes (core/tree, core/markov, core/assoc — enforced by
// scripts/lint/check_conventions.py layering), which is why the block id
// is a plain integer here rather than trace::BlockId.
#pragma once

#include <cstdint>

namespace pfp::core::costben {

/// One predicted block in the controller's vocabulary — exactly the
/// inputs of Equation 1's benefit and Equation 14's overhead.  Predictor
/// families with richer candidate types (core/tree's Candidate carries a
/// NodeId) keep the same leading field semantics, so the generic
/// controller loop works over either via duck typing.
/// Parentless-candidate convention: predictors whose candidates are not
/// links in a chain (the association miner conditions directly on the
/// observed access) have no meaningful p_x.  They set parent_probability
/// to 1.0 at depth 1 and to the candidate's own probability deeper, which
/// reduces Eq. 14's overhead to zero — the candidate is judged purely on
/// its own odds.  Predictors that additionally offer a candidate only
/// once (no re-enumeration next period) should also set the controller's
/// single_offer knob so Eq. 1 prices against the demand fetch instead of
/// a deferred re-offer; see CostBenefitKnobs::single_offer.
struct PredictedBlock {
  std::uint64_t block = 0;
  double probability = 0.0;         ///< p_b: path probability of the block
  double parent_probability = 1.0;  ///< p_x: path probability of its parent
  std::uint32_t depth = 1;          ///< d_b: access periods until expected use
};

}  // namespace pfp::core::costben
