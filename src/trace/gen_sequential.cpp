#include "trace/gen_sequential.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"
#include "util/prng.hpp"
#include "util/zipf.hpp"

namespace pfp::trace {

namespace {

/// Per-stream cursor: which file is open and how far the read has gone.
struct StreamState {
  std::uint64_t file = 0;
  std::uint64_t position = 0;  // next block offset within the file
  std::uint64_t limit = 0;     // stop offset (partial reads end early)
  bool open = false;
};

}  // namespace

SitarGenerator::SitarGenerator(Config config) : config_(config) {
  PFP_REQUIRE(config_.files >= 1);
  PFP_REQUIRE(config_.streams >= 1);
  PFP_REQUIRE(config_.max_file_blocks >= 1);
}

Trace SitarGenerator::generate() const {
  util::Xoshiro256 rng(config_.seed);

  // File sizes and a contiguous on-disk layout.  Metadata occupies blocks
  // [0, metadata_blocks); file data follows.
  std::vector<std::uint64_t> file_size(config_.files);
  std::vector<std::uint64_t> file_base(config_.files);
  std::uint64_t next_base = config_.metadata_blocks;
  for (std::uint64_t f = 0; f < config_.files; ++f) {
    const double raw = rng.lognormal(config_.size_mu, config_.size_sigma);
    const auto blocks = std::clamp<std::uint64_t>(
        static_cast<std::uint64_t>(raw) + 1, 1, config_.max_file_blocks);
    file_size[f] = blocks;
    file_base[f] = next_base;
    next_base += blocks;
  }

  const util::ZipfSampler pick_file(config_.files, config_.popularity_skew);
  const util::ZipfSampler pick_meta(config_.metadata_blocks,
                                    config_.metadata_skew);

  std::vector<StreamState> streams(config_.streams);
  std::uint32_t current = 0;

  Trace trace("sitar");
  trace.reserve(config_.references);
  while (trace.size() < config_.references) {
    // Occasionally service a different open stream (interleaved users /
    // applications), otherwise keep streaming the current file.
    if (rng.bernoulli(config_.switch_prob)) {
      current = static_cast<std::uint32_t>(rng.below(config_.streams));
    }
    StreamState& st = streams[current];
    if (!st.open) {
      st.file = pick_file(rng);
      st.position = 0;
      st.limit = file_size[st.file];
      if (rng.bernoulli(config_.partial_read_prob) && st.limit > 1) {
        st.limit = 1 + rng.below(st.limit);
      }
      st.open = true;
      // Opening a file touches metadata first.
      if (rng.bernoulli(0.5)) {
        trace.append(pick_meta(rng), current);
        continue;
      }
    }
    if (rng.bernoulli(config_.metadata_prob)) {
      trace.append(pick_meta(rng), current);
      continue;
    }
    trace.append(file_base[st.file] + st.position, current);
    ++st.position;
    if (st.position >= st.limit) {
      st.open = false;
    }
  }
  trace.truncate(config_.references);
  return trace;
}

}  // namespace pfp::trace
