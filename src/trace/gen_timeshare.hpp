// "cello"-style workload: disk blocks from a timesharing system.
//
// HP's cello trace (Ruemmler & Wilkes) was collected beneath a 30 MB file
// buffer cache on a busy timesharing machine.  Two consequences the paper
// leans on: (1) most short-range locality was absorbed by that first-level
// cache, so the residual stream predicts poorly (35.8 % accuracy, Table 2)
// and second-level miss rates stay high (~76 % even with prefetching,
// Table 4); (2) what does survive is dominated by long sequential runs
// (cold file reads) plus scattered re-misses, so one-block-lookahead still
// helps while the tree helps less.
//
// The generator emits the *application-level* stream of many interleaved
// processes — private working-set reuse, shared-region reuse, sequential
// runs and cold scans — and the workload factory replays it through
// trace::L1Filter sized like the original 30 MB cache.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace pfp::trace {

class TimeshareGenerator {
 public:
  struct Config {
    std::uint64_t references = 900'000;  ///< raw (pre-filter) records
    std::uint64_t seed = 1992;

    std::uint32_t processes = 64;
    double process_skew = 0.8;            ///< Zipf skew of process activity
    std::uint64_t private_blocks = 4'000; ///< per-process data region
    double private_skew = 0.85;
    std::uint64_t shared_blocks = 8'000;  ///< shared libraries / system files
    double shared_skew = 1.0;
    std::uint64_t cold_blocks = 2'000'000;///< touch-once space (cold scans)

    double burst_mean = 30.0;             ///< accesses per scheduling burst
    double p_private = 0.38;              ///< mixture weights per access:
    double p_shared = 0.14;               ///<   (remainder after the three
    double p_sequential = 0.40;           ///<    below is cold random)
    double run_mean = 24.0;               ///< sequential run length
    /// Chance that a new sequential run re-reads a previously read run
    /// (cron jobs, recompiles, log rotation...).  These long-distance
    /// repeats are what survives the 30 MB first-level cache and gives
    /// the residual trace its modest (~36 %) predictability.
    double rerun_prob = 0.65;
    std::uint32_t run_history = 4;       ///< remembered runs per process
  };

  explicit TimeshareGenerator(Config config);

  [[nodiscard]] Trace generate() const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace pfp::trace
