#include "trace/l1_filter.hpp"

#include "util/assert.hpp"

namespace pfp::trace {

L1Filter::L1Filter(std::size_t capacity_blocks) : capacity_(capacity_blocks) {
  PFP_REQUIRE(capacity_blocks >= 1);
  slot_block_.resize(capacity_blocks);
  free_slots_.reserve(capacity_blocks);
  for (std::size_t i = capacity_blocks; i > 0; --i) {
    free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  lru_.resize(capacity_blocks);
  map_.reserve(capacity_blocks * 2);
}

bool L1Filter::access(BlockId block) {
  if (const auto it = map_.find(block); it != map_.end()) {
    lru_.touch(it->second);
    ++hits_;
    return false;
  }
  ++misses_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = lru_.pop_back();
    PFP_DASSERT(slot != util::LruList::npos);
    map_.erase(slot_block_[slot]);
  }
  slot_block_[slot] = block;
  map_.emplace(block, slot);
  lru_.push_front(slot);
  return true;
}

Trace L1Filter::filter(const Trace& input) {
  Trace out(input.name());
  out.reserve(input.size() / 2);
  for (const auto& r : input) {
    if (access(r.block)) {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace pfp::trace
