// Trace record model.
//
// The paper's simulator consumes a stream of single-block read references
// (Section 8: "an application issues I/O requests as single block
// requests").  A record therefore carries just the referenced block and a
// small amount of provenance (which logical stream/process produced it),
// which the characterization tool and generators use but the simulator
// ignores.
#pragma once

#include <cstdint>

namespace pfp::trace {

/// Disk block identifier.  Blocks are opaque 64-bit names; sequentiality
/// means numeric adjacency (block b+1 follows b), matching how the paper's
/// one-block-lookahead scheme interprets block numbers.
using BlockId = std::uint64_t;

/// Logical origin of a reference (process, client, or CAD session).
using StreamId = std::uint32_t;

struct TraceRecord {
  BlockId block = 0;
  StreamId stream = 0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

}  // namespace pfp::trace
