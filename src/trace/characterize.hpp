// Trace characterization.
//
// Computes the structural properties the paper's analysis turns on —
// sequentiality (what one-block-lookahead can exploit), reuse (what a
// cache can exploit) and repetition (what the LZ tree can exploit) — so
// the synthetic workloads can be validated against the targets recorded
// in DESIGN.md, and so users can profile their own traces.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.hpp"
#include "util/histogram.hpp"

namespace pfp::trace {

struct TraceProfile {
  std::string name;
  std::uint64_t references = 0;
  std::uint64_t unique_blocks = 0;

  /// Fraction of references whose block equals previous block + 1.
  double sequential_fraction = 0.0;
  /// Fraction of references to a block seen earlier in the trace.
  double reuse_fraction = 0.0;
  /// Median LRU stack distance of re-references (blocks), i.e. the cache
  /// size at which half of the reuse would hit.
  double median_reuse_distance = 0.0;
  /// Mean length of maximal runs of consecutive block numbers.
  double mean_run_length = 0.0;
  /// Log2 histogram of LRU stack distances of re-references.
  util::Log2Histogram reuse_distances;
};

/// Single pass over the trace; O(n log n) from the stack-distance tree.
TraceProfile characterize(const Trace& trace);

/// Multi-line human-readable rendering.
std::string to_string(const TraceProfile& profile);

}  // namespace pfp::trace
