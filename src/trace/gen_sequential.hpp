// "sitar"-style workload: file-block traces of normal daily usage.
//
// The paper's sitar trace (Griffioen & Appleton) records student desktop
// activity at file-block granularity.  Its two measured signatures are
// extreme sequentiality (one-block-lookahead removes up to 73 % of
// misses) and a very high last-visited-child revisit rate (73.6 %,
// Table 3).  This generator models that as a population of files laid out
// contiguously on disk, read start-to-finish by a few interleaved
// streams, with Zipf file popularity producing both heavy re-reads of hot
// files and a long tail of touch-once files (compulsory misses that only
// sequential lookahead can remove).
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace pfp::trace {

class SitarGenerator {
 public:
  struct Config {
    std::uint64_t references = 300'000;  ///< records to emit
    std::uint64_t seed = 1999;

    std::uint64_t files = 12'000;       ///< file population
    double popularity_skew = 1.25;      ///< Zipf skew of file choice
    double size_mu = 2.8;               ///< lognormal file size (blocks)
    double size_sigma = 0.9;
    std::uint64_t max_file_blocks = 512;

    std::uint32_t streams = 2;          ///< concurrently open files
    double switch_prob = 0.08;          ///< chance to service another stream
    double partial_read_prob = 0.10;     ///< read only a prefix of the file
    double metadata_prob = 0.02;        ///< directory/inode region access
    std::uint64_t metadata_blocks = 2'000;
    double metadata_skew = 1.1;
  };

  explicit SitarGenerator(Config config);

  /// Deterministic for a fixed config (including seed).
  [[nodiscard]] Trace generate() const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace pfp::trace
