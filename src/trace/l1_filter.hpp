// First-level buffer-cache filter.
//
// The paper's cello and snake traces were captured *below* the original
// machines' file buffer caches (30 MB and 5 MB respectively), so they "do
// not contain I/O accesses that were hits in the original system's file
// buffer cache" (Table 1).  To reproduce that property, generators emit
// the raw application-level reference stream and this filter replays it
// through an LRU cache of the original size, keeping only the misses —
// exactly what the disk-level tracer saw.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"
#include "util/flat_map.hpp"
#include "util/lru_list.hpp"

namespace pfp::trace {

class L1Filter {
 public:
  /// capacity_blocks: size of the simulated first-level cache in blocks
  /// (e.g. 30 MiB / 8 KiB = 3840).  Must be >= 1.
  explicit L1Filter(std::size_t capacity_blocks);

  /// Feeds one reference; returns true if it MISSES (i.e. survives into
  /// the filtered trace).
  bool access(BlockId block);

  /// Replays a whole trace and returns the miss stream.  The result name
  /// is "<name>" unchanged — filtering is part of workload construction,
  /// not a separate dataset.
  Trace filter(const Trace& input);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t resident() const noexcept { return map_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  std::size_t capacity_;
  // slot bookkeeping: slots_ maps LRU slot -> block; map_ block -> slot.
  std::vector<BlockId> slot_block_;
  std::vector<std::uint32_t> free_slots_;
  util::FlatMap<BlockId, std::uint32_t> map_;
  util::LruList lru_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pfp::trace
