#include "trace/characterize.hpp"

#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/string_utils.hpp"

namespace pfp::trace {

namespace {

/// Fenwick tree over access positions; supports the classic one-pass LRU
/// stack-distance algorithm (mark latest position of each block, distance
/// = number of marks after the previous position).
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t index, int delta) {
    for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of [0, index].
  std::int64_t prefix(std::size_t index) const {
    std::int64_t sum = 0;
    for (std::size_t i = index + 1; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

  std::int64_t total() const { return prefix(tree_.size() - 2); }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace

TraceProfile characterize(const Trace& trace) {
  TraceProfile profile;
  profile.name = trace.name();
  profile.references = trace.size();
  if (trace.empty()) {
    return profile;
  }

  std::unordered_map<BlockId, std::size_t> last_position;
  last_position.reserve(trace.size() / 4 + 16);
  Fenwick marks(trace.size());

  std::uint64_t sequential = 0;
  std::uint64_t reused = 0;
  std::uint64_t run_length = 1;
  std::uint64_t run_count = 0;
  std::uint64_t run_length_total = 0;

  BlockId previous = trace[0].block;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const BlockId block = trace[i].block;
    if (i > 0) {
      if (block == previous + 1) {
        ++sequential;
        ++run_length;
      } else {
        run_length_total += run_length;
        ++run_count;
        run_length = 1;
      }
      previous = block;
    }

    const auto it = last_position.find(block);
    if (it != last_position.end()) {
      ++reused;
      // Distinct blocks touched strictly after the previous reference =
      // marks in (prev, i).
      const std::int64_t distance =
          marks.total() - marks.prefix(it->second);
      profile.reuse_distances.add(static_cast<std::uint64_t>(distance));
      marks.add(it->second, -1);
      it->second = i;
    } else {
      last_position.emplace(block, i);
    }
    marks.add(i, +1);
  }
  run_length_total += run_length;
  ++run_count;

  profile.unique_blocks = last_position.size();
  profile.sequential_fraction =
      static_cast<double>(sequential) / static_cast<double>(trace.size() - 1);
  profile.reuse_fraction =
      static_cast<double>(reused) / static_cast<double>(trace.size());
  profile.mean_run_length = static_cast<double>(run_length_total) /
                            static_cast<double>(run_count);

  // Median reuse distance from the log2 histogram (bucket midpoint).
  const std::uint64_t half = profile.reuse_distances.total() / 2;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < profile.reuse_distances.buckets(); ++b) {
    cumulative += profile.reuse_distances.bucket_count(b);
    if (profile.reuse_distances.total() > 0 && cumulative >= half) {
      profile.median_reuse_distance =
          (static_cast<double>(util::Log2Histogram::bucket_lo(b)) +
           static_cast<double>(util::Log2Histogram::bucket_hi(b))) /
          2.0;
      break;
    }
  }
  return profile;
}

std::string to_string(const TraceProfile& profile) {
  std::ostringstream os;
  os << "trace " << profile.name << ":\n"
     << "  references:        " << util::format_count(profile.references)
     << "\n"
     << "  unique blocks:     " << util::format_count(profile.unique_blocks)
     << "\n"
     << "  sequential:        "
     << util::format_percent(profile.sequential_fraction) << "\n"
     << "  reuse:             " << util::format_percent(profile.reuse_fraction)
     << "\n"
     << "  median reuse dist: "
     << util::format_double(profile.median_reuse_distance, 0) << " blocks\n"
     << "  mean run length:   "
     << util::format_double(profile.mean_run_length, 2) << "\n";
  return os.str();
}

}  // namespace pfp::trace
