// Named paper workloads (Table 1).
//
// One factory per trace the paper studies, wiring the matching generator
// and — for the disk-level traces cello and snake — the first-level cache
// filter of the original system (30 MB and 5 MB; the paper's Table 1 notes
// those traces contain no first-level hits).  Block size is taken as 8 KiB,
// giving L1 capacities of 3840 and 640 blocks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace pfp::trace {

enum class Workload { kCello, kSnake, kCad, kSitar };

/// All four paper workloads, in Table 1 order.
const std::vector<Workload>& all_workloads();

/// "cello", "snake", "cad", "sitar".
std::string workload_name(Workload workload);

/// Inverse of workload_name; throws std::invalid_argument on junk.
Workload workload_from_name(const std::string& name);

/// First-level filter capacity in blocks applied below the generator
/// (0 = trace is used unfiltered, as for CAD and sitar).
std::uint64_t workload_l1_blocks(Workload workload);

/// Builds the workload with `references` post-filter records.  The same
/// (workload, references, seed) triple always yields the same trace.
Trace make_workload(Workload workload, std::uint64_t references,
                    std::uint64_t seed = 0);

}  // namespace pfp::trace
