#include "trace/gen_cad.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/prng.hpp"
#include "util/zipf.hpp"

namespace pfp::trace {

namespace {

/// Scatters object coordinates into a sparse 64-bit id space so that no
/// two distinct objects are numerically adjacent (defeats one-block
/// lookahead by construction, like real object identifiers).
BlockId scatter_id(std::uint64_t tag) {
  util::SplitMix64 sm(tag ^ 0xcadb10c5ULL);
  return sm.next() >> 16;  // keep ids comfortably inside 48 bits
}

}  // namespace

CadGenerator::CadGenerator(Config config) : config_(config) {
  PFP_REQUIRE(config_.sequences >= 2);
  PFP_REQUIRE(config_.min_length >= 1);
  PFP_REQUIRE(config_.max_length >= config_.min_length);
  PFP_REQUIRE(config_.successors >= 1);
}

Trace CadGenerator::generate() const {
  util::Xoshiro256 rng(config_.seed);

  const util::ZipfSampler pick_shared(config_.shared_pool,
                                      config_.shared_skew);
  const util::ZipfSampler pick_sequence(config_.sequences,
                                        config_.sequence_skew);

  // Build the traversal library.  Elements are either private to the
  // sequence (hashed from sequence/offset) or drawn from the shared pool
  // (hashed from the pool rank), so sequences overlap on hot objects.
  std::vector<std::vector<BlockId>> library(config_.sequences);
  for (std::uint64_t s = 0; s < config_.sequences; ++s) {
    const auto length = rng.range(config_.min_length, config_.max_length);
    auto& seq = library[s];
    seq.reserve(length);
    for (std::uint64_t i = 0; i < length; ++i) {
      if (rng.bernoulli(config_.shared_prob)) {
        seq.push_back(scatter_id(0x5ea00000000ULL + pick_shared(rng)));
      } else {
        seq.push_back(scatter_id((s << 20) | i));
      }
    }
  }

  // Fixed successor edges: a session finishing one traversal usually
  // continues with a structurally related one.
  std::vector<std::vector<std::uint64_t>> successor(config_.sequences);
  for (std::uint64_t s = 0; s < config_.sequences; ++s) {
    successor[s].reserve(config_.successors);
    for (std::uint32_t k = 0; k < config_.successors; ++k) {
      successor[s].push_back(rng.below(config_.sequences));
    }
  }

  Trace trace("cad");
  trace.reserve(config_.references);
  std::uint64_t seq = pick_sequence(rng);
  while (trace.size() < config_.references) {
    const auto& elements = library[seq];
    for (const BlockId object : elements) {
      if (trace.size() >= config_.references) {
        break;
      }
      if (rng.bernoulli(config_.skip_prob)) {
        continue;
      }
      if (rng.bernoulli(config_.noise_prob)) {
        trace.append(scatter_id(0x5ea00000000ULL + pick_shared(rng)),
                     static_cast<StreamId>(seq));
        continue;
      }
      trace.append(object, static_cast<StreamId>(seq));
    }
    if (rng.bernoulli(config_.follow_prob)) {
      // Weight the first successor most heavily: sessions usually repeat
      // the same follow-up, which drives the high last-visited-child
      // revisit rate the paper measures for CAD (Table 3).
      const auto& succ = successor[seq];
      seq = rng.bernoulli(0.85) ? succ.front()
                                : succ[rng.below(succ.size())];
    } else {
      seq = pick_sequence(rng);
    }
  }
  trace.truncate(config_.references);
  return trace;
}

}  // namespace pfp::trace
