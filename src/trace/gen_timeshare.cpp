#include "trace/gen_timeshare.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/prng.hpp"
#include "util/zipf.hpp"

namespace pfp::trace {

namespace {

struct PastRun {
  std::uint64_t start = 0;
  std::uint64_t length = 0;
};

struct ProcessState {
  std::uint64_t run_block = 0;   ///< next block of the current seq. run
  std::uint64_t run_remaining = 0;
  std::vector<PastRun> history;  ///< ring buffer of completed runs
  std::size_t history_next = 0;
};

}  // namespace

TimeshareGenerator::TimeshareGenerator(Config config) : config_(config) {
  PFP_REQUIRE(config_.processes >= 1);
  PFP_REQUIRE(config_.p_private + config_.p_shared + config_.p_sequential <=
              1.0);
  PFP_REQUIRE(config_.burst_mean >= 1.0);
  PFP_REQUIRE(config_.run_mean >= 1.0);
}

Trace TimeshareGenerator::generate() const {
  util::Xoshiro256 rng(config_.seed);

  // Address-space layout (block numbers):
  //   [0, shared)                          shared libraries / system files
  //   [shared, shared + P*private)         per-process private regions
  //   [data_end, data_end + cold)          cold, effectively touch-once
  const std::uint64_t shared_base = 0;
  const std::uint64_t private_base = config_.shared_blocks;
  const std::uint64_t cold_base =
      private_base + static_cast<std::uint64_t>(config_.processes) *
                         config_.private_blocks;

  const util::ZipfSampler pick_process(config_.processes,
                                       config_.process_skew);
  const util::ZipfSampler pick_private(config_.private_blocks,
                                       config_.private_skew);
  const util::ZipfSampler pick_shared(config_.shared_blocks,
                                      config_.shared_skew);

  std::vector<ProcessState> procs(config_.processes);

  Trace trace("cello-raw");
  trace.reserve(config_.references);

  std::uint32_t proc = 0;
  std::uint64_t burst_remaining = 0;
  while (trace.size() < config_.references) {
    if (burst_remaining == 0) {
      proc = static_cast<std::uint32_t>(pick_process(rng));
      burst_remaining = 1 + rng.poisson(config_.burst_mean - 1.0);
    }
    --burst_remaining;
    ProcessState& st = procs[proc];

    const double roll = rng.uniform();
    BlockId block;
    if (roll < config_.p_private) {
      block = private_base +
              static_cast<std::uint64_t>(proc) * config_.private_blocks +
              pick_private(rng);
    } else if (roll < config_.p_private + config_.p_shared) {
      block = shared_base + pick_shared(rng);
    } else if (roll < config_.p_private + config_.p_shared +
                          config_.p_sequential) {
      if (st.run_remaining == 0) {
        // Start a sequential run: usually a cold file read through space
        // the first-level cache has never seen, but with rerun_prob a
        // re-read of an earlier run — repetition at distances far beyond
        // the L1 filter, the source of the residual predictability.
        if (!st.history.empty() && rng.bernoulli(config_.rerun_prob)) {
          const PastRun& past = st.history[rng.below(st.history.size())];
          st.run_block = past.start;
          st.run_remaining = past.length;
        } else {
          st.run_block = cold_base + rng.below(config_.cold_blocks);
          st.run_remaining = 1 + rng.poisson(config_.run_mean - 1.0);
          const PastRun run{st.run_block, st.run_remaining};
          if (st.history.size() < config_.run_history) {
            st.history.push_back(run);
          } else {
            st.history[st.history_next] = run;
            st.history_next = (st.history_next + 1) % st.history.size();
          }
        }
      }
      block = st.run_block++;
      --st.run_remaining;
    } else {
      block = cold_base + rng.below(config_.cold_blocks);
    }
    trace.append(block, proc);
  }
  trace.truncate(config_.references);
  return trace;
}

}  // namespace pfp::trace
