// In-memory trace container.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace pfp::trace {

/// An ordered sequence of block references plus identifying metadata.
/// Traces are value types; generators return them and the simulator reads
/// them through a span without copying.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}
  Trace(std::string name, std::vector<TraceRecord> records)
      : name_(std::move(name)), records_(std::move(records)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  const TraceRecord& operator[](std::size_t i) const { return records_[i]; }

  void push_back(TraceRecord record) { records_.push_back(record); }
  void append(BlockId block, StreamId stream = 0) {
    records_.push_back(TraceRecord{block, stream});
  }
  void reserve(std::size_t n) { records_.reserve(n); }
  void clear() { records_.clear(); }

  [[nodiscard]] std::span<const TraceRecord> records() const noexcept { return records_; }

  [[nodiscard]] auto begin() const noexcept { return records_.begin(); }
  [[nodiscard]] auto end() const noexcept { return records_.end(); }

  /// Number of distinct blocks referenced (O(n) scan).
  [[nodiscard]] std::size_t unique_blocks() const;

  /// Keeps only the first n records (no-op if already shorter).
  void truncate(std::size_t n);

 private:
  std::string name_;
  std::vector<TraceRecord> records_;
};

}  // namespace pfp::trace
