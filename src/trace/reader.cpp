#include "trace/reader.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <string>

#include "util/string_utils.hpp"

namespace pfp::trace {

namespace {

constexpr std::array<char, 4> kMagic = {'P', 'F', 'P', 'T'};
constexpr std::uint16_t kVersion = 1;

std::uint64_t read_u64le(std::istream& in) {
  std::array<unsigned char, 8> buf{};
  in.read(reinterpret_cast<char*>(buf.data()), buf.size());
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | buf[static_cast<std::size_t>(i)];
  }
  return v;
}

std::uint32_t read_u32le(std::istream& in) {
  std::array<unsigned char, 4> buf{};
  in.read(reinterpret_cast<char*>(buf.data()), buf.size());
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | buf[static_cast<std::size_t>(i)];
  }
  return v;
}

std::uint16_t read_u16le(std::istream& in) {
  std::array<unsigned char, 2> buf{};
  in.read(reinterpret_cast<char*>(buf.data()), buf.size());
  return static_cast<std::uint16_t>(buf[0] | (buf[1] << 8));
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

Trace read_text(std::istream& in, const std::string& name) {
  Trace trace(name);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view view = line;
    if (const auto hash = view.find('#'); hash != std::string_view::npos) {
      view = view.substr(0, hash);
    }
    view = util::trim(view);
    if (view.empty()) {
      continue;
    }
    const auto space = view.find(' ');
    const auto block_text = view.substr(0, space);
    const auto block = util::parse_u64(block_text);
    if (!block) {
      throw TraceFormatError("line " + std::to_string(lineno) +
                             ": bad block id '" + std::string(block_text) +
                             "'");
    }
    StreamId stream = 0;
    if (space != std::string_view::npos) {
      const auto stream_text = util::trim(view.substr(space + 1));
      const auto parsed = util::parse_u64(stream_text);
      if (!parsed || *parsed > 0xffffffffULL) {
        throw TraceFormatError("line " + std::to_string(lineno) +
                               ": bad stream id '" + std::string(stream_text) +
                               "'");
      }
      stream = static_cast<StreamId>(*parsed);
    }
    trace.append(*block, stream);
  }
  return trace;
}

Trace read_binary(std::istream& in, const std::string& name) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw TraceFormatError("not a PFPT binary trace");
  }
  const auto version = read_u16le(in);
  if (version != kVersion) {
    throw TraceFormatError("unsupported PFPT version " +
                           std::to_string(version));
  }
  const auto count = read_u64le(in);
  if (!in) {
    throw TraceFormatError("truncated PFPT header");
  }
  Trace trace(name);
  trace.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto block = read_u64le(in);
    const auto stream = read_u32le(in);
    if (!in) {
      throw TraceFormatError("truncated PFPT body at record " +
                             std::to_string(i));
    }
    trace.append(block, stream);
  }
  return trace;
}

Trace read_file(const std::string& path) {
  const bool binary = ends_with(path, ".pfpt");
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) {
    throw TraceFormatError("cannot open '" + path + "'");
  }
  return binary ? read_binary(in, path) : read_text(in, path);
}

}  // namespace pfp::trace
