// Trace serialization; formats documented in reader.hpp.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace pfp::trace {

/// Writes the text format (block and stream per line).
void write_text(std::ostream& out, const Trace& trace);

/// Writes the binary format.
void write_binary(std::ostream& out, const Trace& trace);

/// Writes to `path`, dispatching on extension: ".pfpt" binary, else text.
void write_file(const std::string& path, const Trace& trace);

}  // namespace pfp::trace
