// "snake"-style workload: disk blocks from a file server.
//
// HP's snake trace was captured beneath a small 5 MB buffer cache on a
// file server.  Compared with cello, far less locality was absorbed by
// the first-level cache (it was 6x smaller), so the disk-level stream
// keeps both heavy sequentiality (client file reads) and substantial
// medium-range reuse (hot files re-missing the small cache) — the paper
// measures 61.5 % prediction accuracy and sees both next-limit and tree
// help.
//
// The generator emits an application-level stream of many client mounts
// reading whole files with Zipf popularity, plus metadata traffic; the
// workload factory filters it through trace::L1Filter(5 MB).
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace pfp::trace {

class FileServerGenerator {
 public:
  struct Config {
    std::uint64_t references = 700'000;  ///< raw (pre-filter) records
    std::uint64_t seed = 1994;

    std::uint64_t files = 5'000;
    double popularity_skew = 1.20;
    double size_mu = 3.2;                ///< lognormal file size (blocks)
    double size_sigma = 1.1;
    std::uint64_t max_file_blocks = 1'024;

    std::uint32_t clients = 12;          ///< concurrently active clients
    double switch_prob = 0.18;           ///< interleave between clients
    double partial_read_prob = 0.15;
    double metadata_prob = 0.06;
    std::uint64_t metadata_blocks = 3'000;
    double metadata_skew = 1.1;
  };

  explicit FileServerGenerator(Config config);

  [[nodiscard]] Trace generate() const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace pfp::trace
