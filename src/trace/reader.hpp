// Trace deserialization.
//
// Two formats:
//  * text — one reference per line: "<block> [<stream>]"; '#' starts a
//    comment; blank lines ignored.  Interoperates with awk-style tooling.
//  * binary — "PFPT" magic, u16 version, u64 record count, then per record
//    a little-endian u64 block and u32 stream.  Compact and fast for the
//    multi-hundred-thousand-reference paper workloads.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "trace/trace.hpp"

namespace pfp::trace {

/// Raised on malformed input in either format.
class TraceFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses the text format.  The trace name is taken from `name`.
Trace read_text(std::istream& in, const std::string& name);

/// Parses the binary format.
Trace read_binary(std::istream& in, const std::string& name);

/// Opens `path` and dispatches on extension: ".pfpt" binary, else text.
Trace read_file(const std::string& path);

}  // namespace pfp::trace
