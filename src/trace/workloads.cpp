#include "trace/workloads.hpp"

#include <stdexcept>

#include "trace/gen_cad.hpp"
#include "trace/gen_fileserver.hpp"
#include "trace/gen_sequential.hpp"
#include "trace/gen_timeshare.hpp"
#include "trace/l1_filter.hpp"
#include "util/assert.hpp"

namespace pfp::trace {

namespace {

// 8 KiB blocks: 30 MiB and 5 MiB first-level caches (Table 1).
constexpr std::uint64_t kCelloL1Blocks = 30ULL * 1024 * 1024 / 8192;  // 3840
constexpr std::uint64_t kSnakeL1Blocks = 5ULL * 1024 * 1024 / 8192;   // 640

/// Generates raw references with the given generator-config factory and
/// replays them through an L1 filter until `references` misses survive.
/// Doubling the raw length and regenerating keeps the result a pure
/// function of (seed, references) — the generators are deterministic, so
/// a longer run is a superset of a shorter one.
template <typename Generator, typename Config>
Trace filtered_workload(Config config, std::uint64_t l1_blocks,
                        std::uint64_t references, const char* name) {
  std::uint64_t raw = references * 3;
  for (int attempt = 0; attempt < 8; ++attempt) {
    config.references = raw;
    const Trace full = Generator(config).generate();
    L1Filter filter(l1_blocks);
    Trace survived = filter.filter(full);
    if (survived.size() >= references || attempt == 7) {
      survived.truncate(references);
      survived.set_name(name);
      return survived;
    }
    raw *= 2;
  }
  PFP_REQUIRE(false);  // unreachable
}

}  // namespace

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> kAll = {
      Workload::kCello, Workload::kSnake, Workload::kCad, Workload::kSitar};
  return kAll;
}

std::string workload_name(Workload workload) {
  switch (workload) {
    case Workload::kCello:
      return "cello";
    case Workload::kSnake:
      return "snake";
    case Workload::kCad:
      return "cad";
    case Workload::kSitar:
      return "sitar";
  }
  return "?";
}

Workload workload_from_name(const std::string& name) {
  for (const Workload w : all_workloads()) {
    if (workload_name(w) == name) {
      return w;
    }
  }
  throw std::invalid_argument("unknown workload '" + name + "'");
}

std::uint64_t workload_l1_blocks(Workload workload) {
  switch (workload) {
    case Workload::kCello:
      return kCelloL1Blocks;
    case Workload::kSnake:
      return kSnakeL1Blocks;
    case Workload::kCad:
    case Workload::kSitar:
      return 0;
  }
  return 0;
}

Trace make_workload(Workload workload, std::uint64_t references,
                    std::uint64_t seed) {
  PFP_REQUIRE(references > 0);
  switch (workload) {
    case Workload::kCello: {
      TimeshareGenerator::Config config;
      config.seed ^= seed;
      return filtered_workload<TimeshareGenerator>(config, kCelloL1Blocks,
                                                   references, "cello");
    }
    case Workload::kSnake: {
      FileServerGenerator::Config config;
      config.seed ^= seed;
      return filtered_workload<FileServerGenerator>(config, kSnakeL1Blocks,
                                                    references, "snake");
    }
    case Workload::kCad: {
      CadGenerator::Config config;
      config.references = references;
      config.seed ^= seed;
      Trace trace = CadGenerator(config).generate();
      trace.set_name("cad");
      return trace;
    }
    case Workload::kSitar: {
      SitarGenerator::Config config;
      config.references = references;
      config.seed ^= seed;
      Trace trace = SitarGenerator(config).generate();
      trace.set_name("sitar");
      return trace;
    }
  }
  throw std::invalid_argument("unknown workload enum value");
}

}  // namespace pfp::trace
