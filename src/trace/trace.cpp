#include "trace/trace.hpp"

#include <unordered_set>

namespace pfp::trace {

std::size_t Trace::unique_blocks() const {
  std::unordered_set<BlockId> seen;
  seen.reserve(records_.size() / 4 + 16);
  for (const auto& r : records_) {
    seen.insert(r.block);
  }
  return seen.size();
}

void Trace::truncate(std::size_t n) {
  if (n < records_.size()) {
    records_.resize(n);
  }
}

}  // namespace pfp::trace
