// "CAD"-style workload: object references from a CAD tool.
//
// The paper's CAD trace (from Curewitz et al.) is the headline
// non-sequential workload: one-block-lookahead gains nothing (object
// identifiers are not numerically adjacent) while the LZ tree predicts
// ~60 % of accesses and achieves ~75 % prefetch-cache hit rates, because
// design sessions re-traverse the same object structures over and over.
//
// We model a CAD database as a library of traversal sequences (think:
// expanding a subcircuit, re-rendering a cell hierarchy).  Object ids are
// produced by hashing so consecutive references are never numerically
// adjacent; sequences chain to fixed successors with high probability
// (sessions revisit related structures), and a small per-element noise
// rate bounds predictability near the paper's 60 %.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace pfp::trace {

class CadGenerator {
 public:
  struct Config {
    std::uint64_t references = 150'000;
    std::uint64_t seed = 1993;

    std::uint64_t sequences = 220;      ///< distinct traversal patterns
    std::uint64_t min_length = 8;       ///< per-sequence element count
    std::uint64_t max_length = 60;
    double shared_prob = 0.30;          ///< element drawn from shared pool
    std::uint64_t shared_pool = 4'000;  ///< shared object population
    double shared_skew = 0.9;           ///< Zipf skew within the pool

    double sequence_skew = 1.10;        ///< Zipf skew of sequence choice
    double follow_prob = 0.80;          ///< chain to a fixed successor
    std::uint32_t successors = 2;       ///< fixed successors per sequence
    double noise_prob = 0.025;           ///< random object instead of next
    double skip_prob = 0.01;            ///< element skipped this traversal
  };

  explicit CadGenerator(Config config);

  [[nodiscard]] Trace generate() const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace pfp::trace
