#include "trace/writer.hpp"

#include <array>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace pfp::trace {

namespace {

void write_u64le(std::ostream& out, std::uint64_t v) {
  std::array<char, 8> buf{};
  for (auto& byte : buf) {
    byte = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  out.write(buf.data(), buf.size());
}

void write_u32le(std::ostream& out, std::uint32_t v) {
  std::array<char, 4> buf{};
  for (auto& byte : buf) {
    byte = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  out.write(buf.data(), buf.size());
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void write_text(std::ostream& out, const Trace& trace) {
  out << "# pfp trace: " << trace.name() << "\n";
  out << "# records: " << trace.size() << "\n";
  for (const auto& r : trace) {
    out << r.block;
    if (r.stream != 0) {
      out << ' ' << r.stream;
    }
    out << '\n';
  }
}

void write_binary(std::ostream& out, const Trace& trace) {
  out.write("PFPT", 4);
  out.put(1);  // version, little-endian u16
  out.put(0);
  write_u64le(out, trace.size());
  for (const auto& r : trace) {
    write_u64le(out, r.block);
    write_u32le(out, r.stream);
  }
}

void write_file(const std::string& path, const Trace& trace) {
  const bool binary = ends_with(path, ".pfpt");
  std::ofstream out(path, binary ? std::ios::binary : std::ios::out);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  binary ? write_binary(out, trace) : write_text(out, trace);
  if (!out) {
    throw std::runtime_error("failed writing '" + path + "'");
  }
}

}  // namespace pfp::trace
