#include "engine/tenant_registry.hpp"

#include <stdexcept>
#include <utility>

namespace pfp::engine {

namespace {

ShardedConfig sharded_config(const TenantConfig& config) {
  ShardedConfig sharded;
  sharded.engine = config.engine;
  sharded.shards = config.shards;
  sharded.queue_capacity = config.queue_capacity;
  // Run routing keeps each shard on contiguous stream segments, so the
  // predictor chains survive sharding (docs/perf.md, "Batched hand-off").
  sharded.routing = Routing::kRuns;
  return sharded;
}

}  // namespace

TenantStatus set_policy_by_name(TenantConfig& config, const std::string& name,
                                std::string* detail) {
  try {
    config.engine.policy.kind = core::policy::kind_from_name(name);
  } catch (const std::invalid_argument& err) {
    if (detail != nullptr) {
      *detail = err.what();
    }
    return TenantStatus::kBadConfig;
  }
  return TenantStatus::kOk;
}

Tenant::Tenant(TenantConfig config) : config_(std::move(config)) {
  if (config_.shards >= 2) {
    sharded_ = std::make_unique<ShardedEngine>(sharded_config(config_));
  } else {
    engine_ = std::make_unique<PrefetchEngine>(config_.engine);
  }
}

AccessResult Tenant::access(trace::BlockId block) {
  if (sharded_) {
    sharded_->push(block);
    return AccessResult{};
  }
  return engine_->access(block);
}

BatchResult Tenant::access_many(std::span<const trace::BlockId> blocks) {
  if (sharded_) {
    sharded_->access_many(blocks);
    return BatchResult{};
  }
  return engine_->access_many(blocks);
}

Metrics Tenant::metrics() {
  if (sharded_) {
    return sharded_->merged_metrics();
  }
  return engine_->metrics();
}

obs::EngineStats Tenant::stats() const {
  // Sharded engines are never replaced, so their cells can be read with
  // no lock at all.  A plain tenant's engine (and its cells) can be
  // swapped by restore(), so the pointer read holds mu_ — the cell reads
  // themselves stay lock-free, the lock only pins the backend alive.
  if (sharded_) {
    return sharded_->stats();
  }
  util::MutexLock lock(mu_);
  return engine_->stats();
}

double Tenant::queue_pressure() const {
  if (!sharded_) {
    return 0.0;
  }
  double worst = 0.0;
  for (std::uint32_t s = 0; s < sharded_->shards(); ++s) {
    const obs::EngineStats stats = sharded_->shard_stats(s);
    if (stats.queue_capacity == 0) {
      continue;
    }
    const double ratio = static_cast<double>(stats.queue_occupancy) /
                         static_cast<double>(stats.queue_capacity);
    if (ratio > worst) {
      worst = ratio;
    }
  }
  return worst;
}

TenantStatus Tenant::snapshot(std::ostream& out, std::string* detail) {
  if (sharded_) {
    if (detail != nullptr) {
      *detail = "sharded tenants have per-shard predictor state; "
                "snapshot is unsupported";
    }
    return TenantStatus::kUnsupported;
  }
  engine_->snapshot(out);
  return TenantStatus::kOk;
}

TenantStatus Tenant::restore(std::istream& in, std::string* detail) {
  if (sharded_) {
    if (detail != nullptr) {
      *detail = "sharded tenants cannot restore a single-engine snapshot";
    }
    return TenantStatus::kUnsupported;
  }
  // Swap-on-success: the blob restores into a FRESH engine first, so a
  // foreign/corrupt stream can never leave the serving engine in a
  // half-restored state.
  auto fresh = std::make_unique<PrefetchEngine>(config_.engine);
  try {
    fresh->restore(in);
  } catch (const std::exception& err) {
    if (detail != nullptr) {
      *detail = err.what();
    }
    return TenantStatus::kBadSnapshot;
  }
  engine_ = std::move(fresh);
  return TenantStatus::kOk;
}

void Tenant::flush() {
  if (sharded_) {
    sharded_->flush();
  }
}

TenantStatus TenantRegistry::open(std::uint16_t id, TenantConfig config,
                                  std::string* detail) {
  // Build outside the registry lock (engine construction allocates the
  // full buffer pool); insert only if the id is still free.
  std::shared_ptr<Tenant> tenant;
  try {
    tenant = std::make_shared<Tenant>(std::move(config));
  } catch (const std::invalid_argument& err) {
    if (detail != nullptr) {
      *detail = err.what();
    }
    return TenantStatus::kBadConfig;
  }
  util::MutexLock lock(mu_);
  const auto [it, inserted] = tenants_.emplace(id, std::move(tenant));
  (void)it;
  if (!inserted) {
    if (detail != nullptr) {
      *detail = "tenant id already open";
    }
    return TenantStatus::kExists;
  }
  return TenantStatus::kOk;
}

std::shared_ptr<Tenant> TenantRegistry::find(std::uint16_t id) const {
  util::MutexLock lock(mu_);
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

TenantStatus TenantRegistry::close(std::uint16_t id) {
  std::shared_ptr<Tenant> tenant;
  {
    util::MutexLock lock(mu_);
    const auto it = tenants_.find(id);
    if (it == tenants_.end()) {
      return TenantStatus::kNoSuchTenant;
    }
    tenant = std::move(it->second);
    tenants_.erase(it);
  }
  // The id is unlinked — new requests get kNoSuchTenant.  Now wait out
  // any in-flight batch (it holds the tenant mutex) and drain sharded
  // rings, so teardown never races a running access.
  {
    util::MutexLock lock(tenant->mu());
    tenant->flush();
  }
  return TenantStatus::kOk;
}

std::vector<std::pair<std::uint16_t, std::shared_ptr<Tenant>>>
TenantRegistry::tenants() const {
  util::MutexLock lock(mu_);
  std::vector<std::pair<std::uint16_t, std::shared_ptr<Tenant>>> out;
  out.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) {
    out.emplace_back(id, tenant);
  }
  return out;
}

std::size_t TenantRegistry::size() const {
  util::MutexLock lock(mu_);
  return tenants_.size();
}

}  // namespace pfp::engine
