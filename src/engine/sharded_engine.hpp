// Sharded prefetch engine: N independent PrefetchEngine shards, one
// worker thread each, fed through per-shard SPSC request queues.
//
// Two partitioning modes (ShardedConfig::routing):
//
//  - Routing::kHash (default): the block space is hash-partitioned, so
//    each shard owns a disjoint set of blocks.  This is the distributed-
//    storage shape (a block lives on exactly one node), but it scatters
//    consecutive references across shards, which destroys exactly the
//    reference-order locality the LZ-tree predictor feeds on — measured
//    cost on the CAD workload: ~2.6x more aggregate state-machine work
//    than a single engine (docs/perf.md, "Batched hand-off").
//
//  - Routing::kRuns: the reference STREAM is sliced into fixed-length
//    runs dealt round-robin to the shards.  Each shard sees contiguous
//    segments of the real access sequence, so the predictor keeps its
//    chains, and every run is naturally one bulk ring transaction.  A
//    block may be cached by several shards (each shard provisions its
//    own buffer pool), which is the scale-out-replicas shape.
//
// Either way each shard runs the full per-access state machine on its
// private cache + predictor + estimators with no cross-shard
// synchronization at all — the only shared state is the queue indices
// and a per-shard processed counter.  Consequence (proven by test): for
// a partitioned workload, every shard reproduces bit-identically the
// metrics of a single PrefetchEngine fed that shard's sub-stream (key
// partition under kHash, positional slices under kRuns), and the merged
// metrics are a deterministic, completion-order-independent fold of the
// per-shard metrics.
//
//   engine::ShardedEngine eng(config);       // spawns the shard workers
//   for (...) eng.push(next_block());        // routes to shard queues
//   eng.flush();                             // waits for queues to drain
//   const auto merged = eng.merged_metrics();
//
// The batched hand-off (docs/perf.md, "Batched hand-off") is the fast
// path: access_many() routes a whole span into per-shard staging
// buffers and flushes each shard's run to its ring in one bulk
// transaction, so the per-element synchronization cost collapses to
// 1/run-length of push()'s.  Staged residue is flushed by drain()
// (also implied by flush(), push() to the same shard, and the
// destructor).
//
// push(), access_many(), drain(), flush() and the metrics accessors
// must be called from one producer thread; the shards consume
// concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "engine/config.hpp"
#include "engine/metrics.hpp"
#include "engine/prefetch_engine.hpp"
#include "obs/counters.hpp"
#include "obs/engine_obs.hpp"
#include "util/space_saving.hpp"
#include "util/spsc_queue.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace pfp::engine {

/// How references are partitioned across the shards.
enum class Routing {
  /// Hash-partition the block space: a block always lands on the same
  /// shard, shard caches are disjoint.  Pays a large predictor-locality
  /// tax on sequence-structured workloads (see the file header).
  kHash,
  /// Slice the reference stream into run_length-sized runs dealt
  /// round-robin: shard k processes runs k, k+shards, ...  Preserves
  /// reference-order locality per shard and makes every run one bulk
  /// ring transaction; blocks may be cached by several shards.
  /// Deterministic in the stream position alone, across any mix of
  /// push() and access_many() calls.
  kRuns,
};

/// Zipf hot-key mitigation for the batched hand-off.  Skewed workloads
/// concentrate references on a few hot blocks, which hash-partitioning
/// concentrates on a few hot shards; both strategies are driven by a
/// producer-side space-saving sketch (util::SpaceSaving) and are
/// deterministic functions of the producer-observed stream prefix.
/// Head-to-head numbers: docs/perf.md, "Batched hand-off".
enum class HotKeyStrategy {
  /// Pure hash partition (the sketch is not even built).
  kNone,
  /// Keep the partition, but let runs bound for a shard that is
  /// currently absorbing a guaranteed-heavy key grow to
  /// flush_threshold_max before flushing: hot shards get maximal ring
  /// transactions.  Flush TIMING changes only — never per-shard order —
  /// so the per-shard == single-engine equivalence is preserved.
  kBatchRuns,
  /// Re-route guaranteed-heavy keys via rendezvous hashing, spreading a
  /// clump of hot keys that the base hash happened to co-locate across
  /// distinct shards.  Requires Routing::kHash (run routing has no
  /// per-key shard affinity to rebalance; the config is rejected).  A key's route can switch when it first clears
  /// the heaviness bound (deterministically — the sketch is a pure
  /// function of the stream prefix), so the block partition is no
  /// longer static and per-shard metrics differ from the kNone fold;
  /// replays remain bit-identical run to run.
  kRebalance,
};

struct ShardedConfig {
  /// Per-shard engine configuration; cache_blocks is PER SHARD, so total
  /// buffer memory is shards * cache_blocks.
  EngineConfig engine;
  std::uint32_t shards = 4;
  /// Per-shard request ring capacity (rounded up to a power of two).
  std::size_t queue_capacity = 4096;
  /// Adaptive bulk-flush bounds for access_many(): a shard's staged run
  /// is handed to its ring once it reaches the shard's current
  /// threshold, which floats between these bounds (doubling on
  /// backpressure, decaying when the worker keeps up).
  std::size_t flush_threshold_min = 32;
  std::size_t flush_threshold_max = 256;
  /// Reference partitioning mode (see Routing).
  Routing routing = Routing::kHash;
  /// Run length for Routing::kRuns: how many consecutive references go
  /// to one shard before the deal moves on.  Longer runs preserve more
  /// predictor locality and cost fewer ring transactions; shorter runs
  /// spread load sooner.  Ignored under kHash.
  std::size_t run_length = 1024;
  /// Hot-key mitigation strategy (see HotKeyStrategy).
  HotKeyStrategy hot_keys = HotKeyStrategy::kNone;
  /// Sketch slots for the producer-side space-saving sketch (tracked
  /// top-K candidates); only used when hot_keys != kNone.
  std::size_t hot_key_capacity = 16;
  /// A key counts as hot once its GUARANTEED sketch frequency (count
  /// minus inherited error) reaches this; filters the Zipf tail
  /// churning through the sketch's minimum slot.
  std::uint64_t hot_key_min_count = 1024;
};

class ShardedEngine {
 public:
  /// Validates the config and spawns one worker per shard on an internal
  /// thread pool; throws std::invalid_argument on a bad config.
  explicit ShardedEngine(ShardedConfig config);

  /// Stops the workers after draining already-queued requests.
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::uint32_t shards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const ShardedConfig& config() const noexcept {
    return config_;
  }

  /// Which shard the base hash partition assigns a block.  This is the
  /// actual route under Routing::kHash except for
  /// HotKeyStrategy::kRebalance's guaranteed-heavy keys (see route());
  /// Routing::kRuns ignores it entirely.
  [[nodiscard]] std::uint32_t shard_of(trace::BlockId block) const noexcept;

  /// Routes one reference to its shard's queue, waiting with bounded
  /// exponential backoff (util::Backoff — spin tiers, then yield) when
  /// the queue is full.  Any staged residue access_many() left for that
  /// shard is flushed first, so the shard's FIFO order holds across
  /// mixed push()/access_many() use.  Producer thread only.
  void push(trace::BlockId block);

  /// Batched entry point: routes the whole span into per-shard staging
  /// buffers and hands each shard's run to its ring in bulk
  /// transactions of flush_threshold_{min..max} records (adaptive; see
  /// ShardedConfig).  Up to flush_threshold_max - 1 references per
  /// shard may remain staged on return — call drain() (or flush()) to
  /// force them out.  Same ordering guarantee as push(): each shard
  /// sees its sub-stream in producer order.  Producer thread only.
  void access_many(std::span<const trace::BlockId> blocks);

  /// Flushes every shard's staged residue to its ring (waiting out
  /// backpressure), without waiting for the workers to process it.
  /// Producer thread only.
  void drain();

  /// Drains staged residue, then blocks until every routed reference
  /// has been processed.  After flush() returns, shard state reads are
  /// race-free (the workers are parked on empty queues).
  void flush();

  /// One shard's engine, for introspection; call flush() first.
  [[nodiscard]] const PrefetchEngine& shard(std::uint32_t index) const {
    return shards_[index]->engine;
  }

  /// Flushes, then folds per-shard metrics in shard-index order (see
  /// merge_metrics for why that makes the result deterministic).
  [[nodiscard]] Metrics merged_metrics();

  /// One shard's live observability view, decorated with that shard's
  /// queue occupancy/capacity gauges and backpressure-wait count.  Unlike
  /// shard(), this needs no flush — any thread, any time.
  [[nodiscard]] obs::EngineStats shard_stats(std::uint32_t index) const;

  /// Live merged view: shard_stats folded in shard-index order.  Counter
  /// sums are exact per shard but the cut across shards is not atomic —
  /// after flush() it equals the deterministic merged_metrics fold.
  [[nodiscard]] obs::EngineStats stats() const;

  /// Flushes, then renders every shard's event ring as one Chrome
  /// trace_event JSON document (pid = shard index).  Producer thread
  /// only, like flush().
  void write_chrome_trace(std::ostream& out);

 private:
  // The caller-thread / shard-thread method partition is machine-checked
  // through the queue's role capabilities (thread_annotations.hpp):
  // push()/flush() assert and require the producer role of the shard
  // queues they touch, worker() the consumer role.  A new method that
  // reads producer-guarded state (e.g. `pushed`) from a worker — or vice
  // versa — fails the -Werror=thread-safety CI leg.
  struct Shard {
    Shard(const EngineConfig& config, std::size_t queue_capacity,
          std::size_t initial_flush_threshold)
        : engine(config),
          queue(queue_capacity),
          flush_threshold(initial_flush_threshold) {}
    PrefetchEngine engine;
    util::SpscQueue<trace::BlockId> queue;
    /// Accesses completed by the worker; release-published so flush()'s
    /// acquire load orders subsequent shard-state reads.
    // writers: shard worker thread  readers: producer thread (flush)
    std::atomic<std::uint64_t> processed{0};
    /// Accesses handed to the ring (staged residue not yet counted);
    /// producer-thread-only, no atomics needed.
    // writers: producer thread (push/flush_staged)  readers: producer thread
    std::uint64_t pushed PFP_GUARDED_BY(queue.producer_role) = 0;
    /// access_many() staging buffer: routed references parked here until
    /// the run reaches flush_threshold, then handed to the ring in one
    /// bulk transaction (try_push_n).  Never observed by the worker.
    // writers: producer thread (access_many/flush_staged)  readers: producer thread
    std::vector<trace::BlockId> staged PFP_GUARDED_BY(queue.producer_role);
    /// Adaptive bulk-flush threshold, floating between the config's
    /// flush_threshold_min/max (doubled on backpressure, decayed when
    /// the worker keeps up).
    // writers: producer thread (flush_staged)  readers: producer thread
    std::size_t flush_threshold PFP_GUARDED_BY(queue.producer_role);
    /// Backoff waits the producer burned on a full queue (push or bulk
    /// flush); producer-written, scraper-read (single-writer Counter
    /// contract).
    obs::Counter push_waits;
  };

  void worker(Shard& shard);
  /// The actual route for a reference: records it in the hot-key sketch,
  /// applies the configured mitigation, and picks the shard per the
  /// routing mode (shard_of() under kHash, the stream-position deal
  /// under kRuns).  Producer thread only (the sketch and the position
  /// counter are producer state).
  [[nodiscard]] std::uint32_t route(trace::BlockId block);
  /// Highest-rendezvous-hash shard for a block (kRebalance target).
  [[nodiscard]] std::uint32_t rendezvous_shard(
      trace::BlockId block) const noexcept;
  /// Hands a shard's whole staged run to its ring (bounded backoff on
  /// backpressure), advances `pushed`, and adapts flush_threshold.
  void flush_staged(Shard& shard);

  ShardedConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Producer-side heavy-hitter sketch; engaged when hot_keys != kNone.
  // writers: producer thread (route)  readers: producer thread
  std::optional<util::SpaceSaving> hot_sketch_;
  /// References routed so far; drives the Routing::kRuns deal.
  // writers: producer thread (route)  readers: producer thread
  std::uint64_t routed_ = 0;
  // writers: destructor (producer thread)  readers: shard worker threads
  std::atomic<bool> stop_{false};
  util::ThreadPool pool_;  ///< exactly one thread per shard
  std::vector<std::future<void>> workers_;
};

}  // namespace pfp::engine
