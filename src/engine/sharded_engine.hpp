// Hash-sharded prefetch engine: N independent PrefetchEngine shards, one
// worker thread each, fed through per-shard SPSC request queues.
//
// The block space is hash-partitioned, so each shard sees a disjoint
// reference sub-stream and runs the full per-access state machine on its
// private cache + predictor + estimators with no cross-shard
// synchronization at all — the only shared state is the queue indices
// and a per-shard processed counter.  Consequence (proven by test): for
// a block-partitioned workload, every shard reproduces bit-identically
// the metrics of a single PrefetchEngine fed that shard's sub-stream,
// and the merged metrics are a deterministic, completion-order-
// independent fold of the per-shard metrics.
//
//   engine::ShardedEngine eng(config);       // spawns the shard workers
//   for (...) eng.push(next_block());        // routes to shard queues
//   eng.flush();                             // waits for queues to drain
//   const auto merged = eng.merged_metrics();
//
// push(), flush() and the metrics accessors must be called from one
// producer thread; the shards consume concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <memory>
#include <vector>

#include "engine/config.hpp"
#include "engine/metrics.hpp"
#include "engine/prefetch_engine.hpp"
#include "obs/counters.hpp"
#include "obs/engine_obs.hpp"
#include "util/spsc_queue.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace pfp::engine {

struct ShardedConfig {
  /// Per-shard engine configuration; cache_blocks is PER SHARD, so total
  /// buffer memory is shards * cache_blocks.
  EngineConfig engine;
  std::uint32_t shards = 4;
  /// Per-shard request ring capacity (rounded up to a power of two).
  std::size_t queue_capacity = 4096;
};

class ShardedEngine {
 public:
  /// Validates the config and spawns one worker per shard on an internal
  /// thread pool; throws std::invalid_argument on a bad config.
  explicit ShardedEngine(ShardedConfig config);

  /// Stops the workers after draining already-queued requests.
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::uint32_t shards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const ShardedConfig& config() const noexcept {
    return config_;
  }

  /// Which shard owns a block (stable hash partition).
  [[nodiscard]] std::uint32_t shard_of(trace::BlockId block) const noexcept;

  /// Routes one reference to its shard's queue; spins briefly when the
  /// queue is full (backpressure).  Producer thread only.
  void push(trace::BlockId block);

  /// Blocks until every pushed reference has been processed.  After
  /// flush() returns, shard state reads are race-free (the workers are
  /// parked on empty queues).
  void flush();

  /// One shard's engine, for introspection; call flush() first.
  [[nodiscard]] const PrefetchEngine& shard(std::uint32_t index) const {
    return shards_[index]->engine;
  }

  /// Flushes, then folds per-shard metrics in shard-index order (see
  /// merge_metrics for why that makes the result deterministic).
  [[nodiscard]] Metrics merged_metrics();

  /// One shard's live observability view, decorated with that shard's
  /// queue occupancy/capacity gauges and backpressure-wait count.  Unlike
  /// shard(), this needs no flush — any thread, any time.
  [[nodiscard]] obs::EngineStats shard_stats(std::uint32_t index) const;

  /// Live merged view: shard_stats folded in shard-index order.  Counter
  /// sums are exact per shard but the cut across shards is not atomic —
  /// after flush() it equals the deterministic merged_metrics fold.
  [[nodiscard]] obs::EngineStats stats() const;

  /// Flushes, then renders every shard's event ring as one Chrome
  /// trace_event JSON document (pid = shard index).  Producer thread
  /// only, like flush().
  void write_chrome_trace(std::ostream& out);

 private:
  // The caller-thread / shard-thread method partition is machine-checked
  // through the queue's role capabilities (thread_annotations.hpp):
  // push()/flush() assert and require the producer role of the shard
  // queues they touch, worker() the consumer role.  A new method that
  // reads producer-guarded state (e.g. `pushed`) from a worker — or vice
  // versa — fails the -Werror=thread-safety CI leg.
  struct Shard {
    Shard(const EngineConfig& config, std::size_t queue_capacity)
        : engine(config), queue(queue_capacity) {}
    PrefetchEngine engine;
    util::SpscQueue<trace::BlockId> queue;
    /// Accesses completed by the worker; release-published so flush()'s
    /// acquire load orders subsequent shard-state reads.
    // writers: shard worker thread  readers: producer thread (flush)
    std::atomic<std::uint64_t> processed{0};
    /// Accesses routed here; producer-thread-only, no atomics needed.
    std::uint64_t pushed PFP_GUARDED_BY(queue.producer_role) = 0;
    /// Spin iterations push() burned waiting on a full queue; producer-
    /// written, scraper-read (single-writer Counter contract).
    obs::Counter push_waits;
  };

  void worker(Shard& shard);

  ShardedConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // writers: destructor (producer thread)  readers: shard worker threads
  std::atomic<bool> stop_{false};
  util::ThreadPool pool_;  ///< exactly one thread per shard
  std::vector<std::future<void>> workers_;
};

}  // namespace pfp::engine
