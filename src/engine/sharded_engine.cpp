#include "engine/sharded_engine.hpp"

#include <stdexcept>
#include <thread>

#include "obs/trace_ring.hpp"

namespace pfp::engine {

namespace {

// SplitMix64 finalizer: cheap, stable, and mixes low-entropy block ids
// (sequential file offsets) evenly across shards.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Runs before the thread pool spins up (member-init order), so a bad
// shard count can never spawn a runaway number of workers first.
ShardedConfig validated(ShardedConfig config) {
  if (config.shards == 0) {
    throw std::invalid_argument("ShardedConfig: shards must be at least 1");
  }
  if (config.shards > 1024) {
    throw std::invalid_argument(
        "ShardedConfig: shards must be at most 1024");
  }
  validate(config.engine);
  return config;
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedConfig config)
    : config_(validated(config)), pool_(config_.shards) {
  shards_.reserve(config_.shards);
  for (std::uint32_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(config_.engine, config_.queue_capacity));
  }
  // Thread-per-shard: each worker occupies one pool thread for the
  // engine's whole lifetime, which is why the pool is sized to shards.
  workers_.reserve(config.shards);
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    workers_.push_back(pool_.submit([this, s] { worker(*s); }));
  }
}

ShardedEngine::~ShardedEngine() {
  stop_.store(true, std::memory_order_release);
  for (auto& future : workers_) {
    try {
      future.get();
    } catch (...) {
      // Worker exceptions (none expected: access() doesn't throw after
      // construction) must not escape a destructor.
    }
  }
}

std::uint32_t ShardedEngine::shard_of(trace::BlockId block) const noexcept {
  return static_cast<std::uint32_t>(mix64(block) %
                                    shards_.size());
}

void ShardedEngine::push(trace::BlockId block) {
  Shard& shard = *shards_[shard_of(block)];
  // This thread is the engine's unique producer (class contract); it
  // plays the producer role for every shard queue and is the single
  // writer of the backpressure counter.
  shard.queue.assert_producer();
  shard.push_waits.assert_writer();
  while (!shard.queue.try_push(block)) {
    shard.push_waits.inc();  // off the steady-state path: full queue only
    std::this_thread::yield();  // backpressure: consumer is behind
  }
  ++shard.pushed;
}

void ShardedEngine::flush() {
  for (auto& shard : shards_) {
    shard->queue.assert_producer();  // `pushed` is producer-guarded
    while (shard->processed.load(std::memory_order_acquire) <
           shard->pushed) {
      std::this_thread::yield();
    }
  }
}

Metrics ShardedEngine::merged_metrics() {
  flush();
  std::vector<Metrics> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    per_shard.push_back(shard->engine.metrics());
  }
  return merge_metrics(per_shard);
}

obs::EngineStats ShardedEngine::shard_stats(std::uint32_t index) const {
  const Shard& shard = *shards_[index];
  obs::EngineStats stats = shard.engine.stats();
  stats.queue_occupancy = shard.queue.size();
  stats.queue_capacity = shard.queue.capacity();
  stats.queue_backpressure_waits = shard.push_waits.get();
  return stats;
}

obs::EngineStats ShardedEngine::stats() const {
  obs::EngineStats merged = shard_stats(0);
  for (std::uint32_t i = 1; i < shards(); ++i) {
    merged.merge(shard_stats(i));
  }
  return merged;
}

void ShardedEngine::write_chrome_trace(std::ostream& out) {
  // flush()'s acquire on each processed counter orders the workers' ring
  // slot writes before our reads (the quiescent-dump contract).
  flush();
  std::vector<const obs::TraceRing*> rings;
  rings.reserve(shards_.size());
  for (const auto& shard : shards_) {
    rings.push_back(&shard->engine.observability().ring());
  }
  obs::write_chrome_trace(out, rings);
}

void ShardedEngine::worker(Shard& shard) {
  // This thread is the shard's unique consumer and the only thread that
  // ever touches shard.engine after construction.
  shard.queue.assert_consumer();
  trace::BlockId block = 0;
  for (;;) {
    if (shard.queue.try_pop(block)) {
      shard.engine.access(block);
      shard.processed.fetch_add(1, std::memory_order_release);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Drain anything that raced in before stop was observed.
      while (shard.queue.try_pop(block)) {
        shard.engine.access(block);
        shard.processed.fetch_add(1, std::memory_order_release);
      }
      return;
    }
    std::this_thread::yield();
  }
}

}  // namespace pfp::engine
