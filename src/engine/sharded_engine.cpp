#include "engine/sharded_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace_ring.hpp"
#include "util/backoff.hpp"

namespace pfp::engine {

namespace {

// SplitMix64 finalizer: cheap, stable, and mixes low-entropy block ids
// (sequential file offsets) evenly across shards.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Runs before the thread pool spins up (member-init order), so a bad
// shard count can never spawn a runaway number of workers first.
ShardedConfig validated(ShardedConfig config) {
  if (config.shards == 0) {
    throw std::invalid_argument("ShardedConfig: shards must be at least 1");
  }
  if (config.shards > 1024) {
    throw std::invalid_argument(
        "ShardedConfig: shards must be at most 1024");
  }
  if (config.flush_threshold_min == 0) {
    throw std::invalid_argument(
        "ShardedConfig: flush_threshold_min must be at least 1");
  }
  if (config.flush_threshold_max < config.flush_threshold_min) {
    throw std::invalid_argument(
        "ShardedConfig: flush_threshold_max must be >= flush_threshold_min");
  }
  if (config.hot_keys != HotKeyStrategy::kNone &&
      config.hot_key_capacity == 0) {
    throw std::invalid_argument(
        "ShardedConfig: hot_key_capacity must be at least 1");
  }
  if (config.run_length == 0) {
    throw std::invalid_argument(
        "ShardedConfig: run_length must be at least 1");
  }
  if (config.routing == Routing::kRuns &&
      config.hot_keys == HotKeyStrategy::kRebalance) {
    throw std::invalid_argument(
        "ShardedConfig: kRebalance re-routes by key; run routing has no "
        "per-key shard affinity to rebalance");
  }
  validate(config.engine);
  return config;
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedConfig config)
    : config_(validated(config)), pool_(config_.shards) {
  if (config_.hot_keys != HotKeyStrategy::kNone) {
    hot_sketch_.emplace(config_.hot_key_capacity);
  }
  shards_.reserve(config_.shards);
  for (std::uint32_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        config_.engine, config_.queue_capacity, config_.flush_threshold_min));
    shards_.back()->queue.assert_producer();  // constructing thread
    shards_.back()->staged.reserve(config_.flush_threshold_max);
  }
  // Thread-per-shard: each worker occupies one pool thread for the
  // engine's whole lifetime, which is why the pool is sized to shards.
  workers_.reserve(config.shards);
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    workers_.push_back(pool_.submit([this, s] { worker(*s); }));
  }
}

ShardedEngine::~ShardedEngine() {
  // Staged residue must reach the rings before the workers are told to
  // stop, or those accesses would be lost.
  drain();
  stop_.store(true, std::memory_order_release);
  for (auto& future : workers_) {
    try {
      future.get();
    } catch (...) {
      // Worker exceptions (none expected: access() doesn't throw after
      // construction) must not escape a destructor.
    }
  }
}

std::uint32_t ShardedEngine::shard_of(trace::BlockId block) const noexcept {
  return static_cast<std::uint32_t>(mix64(block) %
                                    shards_.size());
}

std::uint32_t ShardedEngine::rendezvous_shard(
    trace::BlockId block) const noexcept {
  // Highest-random-weight choice over the shards with a hash stream
  // independent of the base partition (different per-shard salt), so a
  // clump of hot keys that mix64 % shards co-located gets spread out.
  std::uint32_t best = 0;
  std::uint64_t best_score = 0;
  for (std::uint32_t i = 0; i < shards(); ++i) {
    const std::uint64_t score =
        mix64(block ^ (0xa0761d6478bd642fULL * (i + 1)));
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

std::uint32_t ShardedEngine::route(trace::BlockId block) {
  if (hot_sketch_.has_value()) {
    hot_sketch_->record(block);
    if (config_.hot_keys == HotKeyStrategy::kRebalance &&
        hot_sketch_->is_heavy(block, config_.hot_key_min_count)) {
      // kRebalance implies kHash routing (validated()), so this is the
      // only detour from the base partition.
      return rendezvous_shard(block);
    }
  }
  if (config_.routing == Routing::kRuns) {
    // Deal the stream out in run_length-sized slices: a pure function of
    // the reference's position, shared by push() and access_many(), so
    // the partition is identical across any mix of entry points.
    return static_cast<std::uint32_t>((routed_++ / config_.run_length) %
                                      shards_.size());
  }
  return shard_of(block);
}

void ShardedEngine::push(trace::BlockId block) {
  Shard& shard = *shards_[route(block)];
  // This thread is the engine's unique producer (class contract); it
  // plays the producer role for every shard queue and is the single
  // writer of the backpressure counter.
  shard.queue.assert_producer();
  shard.push_waits.assert_writer();
  if (!shard.staged.empty()) {
    // FIFO across mixed entry points: residue access_many() staged for
    // this shard predates this reference, so it goes to the ring first.
    flush_staged(shard);
  }
  util::Backoff backoff;
  while (!shard.queue.try_push(block)) {
    shard.push_waits.inc();  // off the steady-state path: full queue only
    backoff.wait();  // backpressure: consumer is behind
  }
  ++shard.pushed;
}

void ShardedEngine::access_many(std::span<const trace::BlockId> blocks) {
  for (const trace::BlockId block : blocks) {
    Shard& shard = *shards_[route(block)];
    shard.queue.assert_producer();
    shard.staged.push_back(block);
    std::size_t threshold = shard.flush_threshold;
    if (config_.hot_keys == HotKeyStrategy::kBatchRuns &&
        hot_sketch_->is_heavy(block, config_.hot_key_min_count)) {
      // Hot shard: let the run grow to the maximum so the hammered ring
      // gets the cheapest possible per-element hand-off.  Flush timing
      // only — per-shard order is untouched.
      threshold = config_.flush_threshold_max;
    }
    if (shard.staged.size() >= threshold) {
      flush_staged(shard);
    }
  }
}

void ShardedEngine::flush_staged(Shard& shard) {
  shard.queue.assert_producer();
  shard.push_waits.assert_writer();
  std::span<const trace::BlockId> rest(shard.staged);
  util::Backoff backoff;
  bool waited = false;
  while (!rest.empty()) {
    const std::size_t accepted = shard.queue.try_push_n(rest);
    if (accepted == 0) {
      waited = true;
      shard.push_waits.inc();
      backoff.wait();
      continue;
    }
    rest = rest.subspan(accepted);
    backoff.reset();
  }
  shard.pushed += shard.staged.size();
  shard.staged.clear();
  // Adapt the run length to the worker: backpressure means it is behind
  // (longer runs amortize the hand-off the producer is stalled on
  // anyway); instant full acceptance means it keeps up (shorter runs
  // hand work over sooner instead of parking it in the staging buffer).
  if (waited) {
    shard.flush_threshold =
        std::min(shard.flush_threshold * 2, config_.flush_threshold_max);
  } else {
    shard.flush_threshold =
        std::max(shard.flush_threshold - shard.flush_threshold / 4,
                 config_.flush_threshold_min);
  }
}

void ShardedEngine::drain() {
  for (auto& shard : shards_) {
    shard->queue.assert_producer();
    if (!shard->staged.empty()) {
      flush_staged(*shard);
    }
  }
}

void ShardedEngine::flush() {
  drain();
  for (auto& shard : shards_) {
    shard->queue.assert_producer();  // `pushed` is producer-guarded
    util::Backoff backoff;
    while (shard->processed.load(std::memory_order_acquire) <
           shard->pushed) {
      backoff.wait();
    }
  }
}

Metrics ShardedEngine::merged_metrics() {
  flush();
  std::vector<Metrics> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    per_shard.push_back(shard->engine.metrics());
  }
  return merge_metrics(per_shard);
}

obs::EngineStats ShardedEngine::shard_stats(std::uint32_t index) const {
  const Shard& shard = *shards_[index];
  obs::EngineStats stats = shard.engine.stats();
  stats.queue_occupancy = shard.queue.size();
  stats.queue_capacity = shard.queue.capacity();
  stats.queue_backpressure_waits = shard.push_waits.get();
  return stats;
}

obs::EngineStats ShardedEngine::stats() const {
  obs::EngineStats merged = shard_stats(0);
  for (std::uint32_t i = 1; i < shards(); ++i) {
    merged.merge(shard_stats(i));
  }
  return merged;
}

void ShardedEngine::write_chrome_trace(std::ostream& out) {
  // flush()'s acquire on each processed counter orders the workers' ring
  // slot writes before our reads (the quiescent-dump contract).
  flush();
  std::vector<const obs::TraceRing*> rings;
  rings.reserve(shards_.size());
  for (const auto& shard : shards_) {
    rings.push_back(&shard->engine.observability().ring());
  }
  obs::write_chrome_trace(out, rings);
}

void ShardedEngine::worker(Shard& shard) {
  // This thread is the shard's unique consumer and the only thread that
  // ever touches shard.engine after construction.  It pulls
  // variable-size runs in one bulk ring transaction each and feeds them
  // through the engine's batched loop, so both ends of the ring and the
  // per-access setup are amortized over the run.
  shard.queue.assert_consumer();
  std::vector<trace::BlockId> run(config_.flush_threshold_max);
  util::Backoff backoff;
  for (;;) {
    const std::size_t n = shard.queue.try_pop_n(run.data(), run.size());
    if (n > 0) {
      shard.engine.access_many(std::span(run.data(), n));
      shard.processed.fetch_add(n, std::memory_order_release);
      backoff.reset();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Drain anything that raced in before stop was observed.
      for (;;) {
        const std::size_t tail = shard.queue.try_pop_n(run.data(), run.size());
        if (tail == 0) {
          return;
        }
        shard.engine.access_many(std::span(run.data(), tail));
        shard.processed.fetch_add(tail, std::memory_order_release);
      }
    }
    backoff.wait();
  }
}

}  // namespace pfp::engine
