#include "engine/prefetch_engine.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <typeinfo>

#include "core/policy/dispatch.hpp"
#include "util/assert.hpp"

namespace pfp::engine {

using core::policy::AccessOutcome;
using core::policy::Context;

namespace {

// Qualified-call proxy for the devirtualized run_trace() loops: `P` is
// the exact dynamic type (asserted at dispatch), so P::member calls skip
// the vtable and can inline.  Works for non-final policies too — kTree
// maps to a TreeCostBenefit object even though subclasses of it exist.
template <typename P>
struct Direct {
  P& p;
  void on_access(trace::BlockId block, AccessOutcome outcome, Context& ctx) {
    p.P::on_access(block, outcome, ctx);
  }
  void reclaim_for_demand(Context& ctx) { p.P::reclaim_for_demand(ctx); }
  void on_prefetch_consumed(const cache::PrefetchEntry& entry, Context& ctx) {
    p.P::on_prefetch_consumed(entry, ctx);
  }
};

// Vtable proxy: the push/step paths and the fallback for policy kinds
// without a dedicated loop.
struct Virtual {
  core::policy::Prefetcher& p;
  void on_access(trace::BlockId block, AccessOutcome outcome, Context& ctx) {
    p.on_access(block, outcome, ctx);
  }
  void reclaim_for_demand(Context& ctx) { p.reclaim_for_demand(ctx); }
  void on_prefetch_consumed(const cache::PrefetchEntry& entry, Context& ctx) {
    p.on_prefetch_consumed(entry, ctx);
  }
};

// --- snapshot stream helpers (little-endian, like core/tree/serialize) --

constexpr std::array<char, 4> kMagic = {'P', 'F', 'E', 'G'};
// v1: residency + metrics + a tree-or-nothing predictor flag byte.
// v2: residency + metrics + a predictor FourCC tag and a length-prefixed
//     opaque predictor blob (any policy family).  v1 images still load.
constexpr std::uint16_t kVersion = 2;
// Backstop against garbage length prefixes: no predictor state in this
// simulator approaches 1 GiB, so anything larger is a corrupt stream,
// not a big model — reject before trying to allocate it.
constexpr std::uint64_t kMaxPredictorBlobBytes = 1ull << 30;

void write_u16(std::ostream& out, std::uint16_t v) {
  out.put(static_cast<char>(v & 0xff));
  out.put(static_cast<char>((v >> 8) & 0xff));
}

void write_u32(std::ostream& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.put(static_cast<char>(v & 0xff));
    v >>= 8;
  }
}

void write_u64(std::ostream& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.put(static_cast<char>(v & 0xff));
    v >>= 8;
  }
}

void write_f64(std::ostream& out, double v) {
  write_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint16_t read_u16(std::istream& in) {
  std::array<unsigned char, 2> b{};
  in.read(reinterpret_cast<char*>(b.data()), b.size());
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t read_u32(std::istream& in) {
  std::array<unsigned char, 4> b{};
  in.read(reinterpret_cast<char*>(b.data()), b.size());
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | b[static_cast<std::size_t>(i)];
  }
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  std::array<unsigned char, 8> b{};
  in.read(reinterpret_cast<char*>(b.data()), b.size());
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | b[static_cast<std::size_t>(i)];
  }
  return v;
}

double read_f64(std::istream& in) {
  return std::bit_cast<double>(read_u64(in));
}

[[noreturn]] void corrupt(const std::string& what) {
  throw std::runtime_error("engine snapshot stream: " + what);
}

}  // namespace

PrefetchEngine::PrefetchEngine(EngineConfig config)
    : config_((validate(config), config)),
      cache_(config.cache_blocks),
      disks_(cache::DiskConfig{config.disks, config.timing.t_disk}),
      policy_(core::policy::make_prefetcher(config.policy)),
      obs_(config.obs) {
  phase_clock_.arm(obs_.phase_cells());
}

Context PrefetchEngine::make_context() {
  Context ctx{cache_,      disks_, config_.timing, estimators_,
              stack_,      metrics_.policy};
  ctx.phases = phase_clock_.armed() ? &phase_clock_ : nullptr;
  return ctx;
}

void PrefetchEngine::publish_observability() {
#ifdef PFP_OBS
  // The engine's driving thread is the unique observability writer (the
  // class is single-threaded by contract; ShardedEngine gives each shard
  // its own engine).  Declare the roles once for the whole batch.
  auto& counters = obs_.counters();
  auto& gate = obs_.gate();
  counters.assert_writer();
  gate.assert_writer();
  gate.begin_write();
  counters.accesses.set(metrics_.accesses);
  counters.demand_hits.set(metrics_.demand_hits);
  counters.prefetch_hits.set(metrics_.prefetch_hits);
  counters.misses.set(metrics_.misses);
  counters.prefetches_issued.set(metrics_.policy.prefetches_issued);
  counters.prefetch_ejections.set(metrics_.policy.prefetch_ejections);
  counters.demand_ejections.set(metrics_.policy.demand_ejections);
  counters.disk_requests.set(metrics_.disk_requests);
  counters.resident_blocks.set(cache_.resident());
  counters.free_buffers.set(cache_.free_buffers());
  counters.tree_nodes.set(metrics_.policy.tree_nodes);
  counters.elapsed_virtual_us.set(
      static_cast<std::uint64_t>(metrics_.elapsed_ms * 1000.0));
  gate.end_write();
#endif
}

void PrefetchEngine::write_chrome_trace(std::ostream& out) const {
  const obs::TraceRing* rings[] = {&obs_.ring()};
  obs::write_chrome_trace(out, rings);
}

template <typename PolicyRef>
AccessOutcome PrefetchEngine::step_one(
    PolicyRef policy, trace::BlockId block, std::uint64_t period,
    std::span<const trace::TraceRecord> upcoming, Context& ctx,
    [[maybe_unused]] bool publish_each) {
  const double period_start = metrics_.elapsed_ms;
  ctx.period = period;
  ctx.now_ms = period_start;
  ctx.upcoming = upcoming;
  phase_clock_.start();
#ifdef PFP_OBS
  const bool tracing = obs_.ring().enabled();
  const std::uint64_t ejections_before =
      tracing ? metrics_.policy.prefetch_ejections +
                    metrics_.policy.demand_ejections
              : 0;
#endif

  const auto result = cache_.access(block);
  ++metrics_.accesses;

  // Every access period: read the block from the cache and compute.
  metrics_.elapsed_ms += config_.timing.t_hit + config_.timing.t_cpu;

  AccessOutcome outcome;
  if (const auto* hit = std::get_if<cache::DemandHit>(&result)) {
    outcome = AccessOutcome::kDemandHit;
    ++metrics_.demand_hits;
    stack_.record(/*hit=*/true, hit->stack_depth);
    phase_clock_.mark(util::EnginePhase::kLookup);
  } else if (const auto* pf = std::get_if<cache::PrefetchHit>(&result)) {
    outcome = AccessOutcome::kPrefetchHit;
    ++metrics_.prefetch_hits;
    stack_.record(/*hit=*/false);
    // Residual stall: the prefetch's disk read may not have completed by
    // the time its block is referenced (Figure 5's partial overlap).
    const double stall =
        std::max(pf->entry.completion_ms - period_start, 0.0);
    metrics_.elapsed_ms += stall;
    metrics_.stall_ms += stall;
    phase_clock_.mark(util::EnginePhase::kLookup);
    // Consumption feeds the estimator EWMAs, so its time is charged to
    // the predictor-update phase (closed by the policy's own mark).
    policy.on_prefetch_consumed(pf->entry, ctx);
  } else {
    outcome = AccessOutcome::kMiss;
    ++metrics_.misses;
    stack_.record(/*hit=*/false);
    metrics_.elapsed_ms += config_.timing.t_driver;
    const double completion = disks_.submit(block, metrics_.elapsed_ms);
    const double stall = completion - metrics_.elapsed_ms;
    metrics_.elapsed_ms = completion;
    metrics_.stall_ms += stall;
    phase_clock_.mark(util::EnginePhase::kLookup);
    if (cache_.free_buffers() == 0) {
      policy.reclaim_for_demand(ctx);
      PFP_REQUIRE(cache_.free_buffers() >= 1);
    }
    cache_.admit_demand(block);
    phase_clock_.mark(util::EnginePhase::kEviction);
  }

  // Policy turn: learn from the access, then issue this period's
  // prefetches; each costs T_driver of CPU time (Figure 3b).
  const std::uint64_t issued_before = metrics_.policy.prefetches_issued;
  policy.on_access(block, outcome, ctx);
  const std::uint64_t issued =
      metrics_.policy.prefetches_issued - issued_before;
  metrics_.elapsed_ms +=
      static_cast<double>(issued) * config_.timing.t_driver;

  // Keep the disk aggregates current so push-style users see fresh
  // metrics without a run epilogue.
  metrics_.disk_queue_delay_ms = disks_.queue_delay_ms();
  metrics_.disk_requests = disks_.requests();
  // Closes the policy turn: for tree policies this spans the issue loop
  // and end_period; policies without internal marks land whole here.
  phase_clock_.mark(util::EnginePhase::kIssue);

#ifdef PFP_OBS
  if (publish_each) {
    publish_observability();
  }
  if (tracing) {
    // Same single-threaded contract as publish_observability(): this
    // thread is the ring's unique writer.
    auto& ring = obs_.ring();
    ring.assert_writer();
    obs::TraceEvent event;
    event.block = block;
    event.ts_ms = period_start;
    event.dur_ms = metrics_.elapsed_ms - period_start;
    event.kind = obs::EventKind::kAccess;
    event.arg = static_cast<std::uint32_t>(
        outcome == AccessOutcome::kDemandHit
            ? obs::EventOutcome::kDemandHit
            : (outcome == AccessOutcome::kPrefetchHit
                   ? obs::EventOutcome::kPrefetchHit
                   : obs::EventOutcome::kMiss));
    ring.emit(event);
    if (issued > 0) {
      event.kind = obs::EventKind::kPrefetchIssue;
      event.arg = static_cast<std::uint32_t>(issued);
      ring.emit(event);
    }
    const std::uint64_t ejected = metrics_.policy.prefetch_ejections +
                                  metrics_.policy.demand_ejections -
                                  ejections_before;
    if (ejected > 0) {
      event.kind = obs::EventKind::kEviction;
      event.arg = static_cast<std::uint32_t>(ejected);
      ring.emit(event);
    }
  }
#endif

  PFP_DASSERT(cache_.resident() <= cache_.total_blocks());
  return outcome;
}

AccessResult PrefetchEngine::access(trace::BlockId block) {
  Context ctx = make_context();
  const double elapsed_before = metrics_.elapsed_ms;
  const AccessOutcome outcome =
      step_one(Virtual{*policy_}, block, metrics_.accesses, {}, ctx);

  AccessResult result;
  switch (outcome) {
    case AccessOutcome::kDemandHit:
      result.outcome = Outcome::kDemandHit;
      break;
    case AccessOutcome::kPrefetchHit:
      result.outcome = Outcome::kPrefetchHit;
      break;
    case AccessOutcome::kMiss:
      result.outcome = Outcome::kMiss;
      break;
  }
  // Everything the period charged except the caller's own compute.
  result.latency_ms =
      metrics_.elapsed_ms - elapsed_before - config_.timing.t_cpu;
  return result;
}

void PrefetchEngine::step(const trace::Trace& trace, std::size_t index) {
  Context ctx = make_context();
  step_one(Virtual{*policy_}, trace[index].block, index,
           trace.records().subspan(index + 1), ctx);
}

template <typename PolicyRef>
void PrefetchEngine::run_blocks(PolicyRef policy,
                                std::span<const trace::BlockId> blocks,
                                Context& ctx) {
  // The batched inner loop: per-access setup (Context build, policy
  // dispatch, observability publish) is hoisted to the batch boundary.
  // `period` is the running access counter — exactly what the push-one
  // path passes — so batched and push-one streams are bit-identical.
  for (const trace::BlockId block : blocks) {
    step_one(policy, block, metrics_.accesses, {}, ctx,
             /*publish_each=*/false);
  }
  publish_observability();
}

BatchResult PrefetchEngine::access_many(
    std::span<const trace::BlockId> blocks) {
  const Metrics before = metrics_;
  Context ctx = make_context();
  core::policy::dispatch_kind(config_.policy.kind, [&](auto tag) {
    using PolicyT = typename decltype(tag)::type;
    if constexpr (std::is_same_v<PolicyT, core::policy::Prefetcher>) {
      run_blocks(Virtual{*policy_}, blocks, ctx);  // vtable fallback
    } else {
      PFP_DASSERT(typeid(*policy_) == typeid(PolicyT));
      run_blocks(Direct<PolicyT>{static_cast<PolicyT&>(*policy_)}, blocks,
                 ctx);
    }
  });

  BatchResult result;
  result.demand_hits = metrics_.demand_hits - before.demand_hits;
  result.prefetch_hits = metrics_.prefetch_hits - before.prefetch_hits;
  result.misses = metrics_.misses - before.misses;
  result.latency_ms =
      metrics_.elapsed_ms - before.elapsed_ms -
      static_cast<double>(blocks.size()) * config_.timing.t_cpu;
  return result;
}

template <typename PolicyRef>
void PrefetchEngine::run_loop(PolicyRef policy, const trace::Trace& trace) {
  // One Context for the whole run; step_one refreshes the per-period
  // fields (period, now_ms, upcoming) instead of rebuilding the struct
  // of references every access.
  Context ctx = make_context();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    step_one(policy, trace[i].block, i, trace.records().subspan(i + 1),
             ctx);
  }
}

template <typename PolicyT>
void PrefetchEngine::run_as(const trace::Trace& trace) {
  PFP_DASSERT(typeid(*policy_) == typeid(PolicyT));
  run_loop(Direct<PolicyT>{static_cast<PolicyT&>(*policy_)}, trace);
}

void PrefetchEngine::run_trace(const trace::Trace& trace) {
  // Fast path: replay through the batched loop.  Valid whenever the
  // per-index state run_loop supplies is reproducible without the trace:
  // `period` (the trace index) must equal the running access counter —
  // true exactly when the engine starts fresh — and `upcoming` must be
  // dead, which holds for every policy except the oracle
  // perfect-selector (the only ctx.upcoming consumer).  Bit-identical on
  // this path by the access_many contract; anything else replays through
  // the indexed loop below.
  if (metrics_.accesses == 0 &&
      config_.policy.kind != core::policy::PolicyKind::kPerfectSelector) {
    std::vector<trace::BlockId> blocks;
    blocks.reserve(trace.size());
    for (const trace::TraceRecord& record : trace.records()) {
      blocks.push_back(record.block);
    }
    access_many(blocks);
    return;
  }
  core::policy::dispatch_kind(config_.policy.kind, [&](auto tag) {
    using PolicyT = typename decltype(tag)::type;
    if constexpr (std::is_same_v<PolicyT, core::policy::Prefetcher>) {
      run_loop(Virtual{*policy_}, trace);  // unknown kind: vtable fallback
    } else {
      run_as<PolicyT>(trace);
    }
  });
}

void PrefetchEngine::snapshot(std::ostream& out) const {
  out.write(kMagic.data(), kMagic.size());
  write_u16(out, kVersion);
  write_u64(out, config_.cache_blocks);

  write_u64(out, metrics_.accesses);
  write_u64(out, metrics_.demand_hits);
  write_u64(out, metrics_.prefetch_hits);
  write_u64(out, metrics_.misses);
  write_f64(out, metrics_.elapsed_ms);
  write_f64(out, metrics_.stall_ms);
  write_f64(out, metrics_.disk_queue_delay_ms);
  write_u64(out, metrics_.disk_requests);

  const auto& p = metrics_.policy;
  write_u64(out, p.prefetches_issued);
  write_u64(out, p.obl_prefetches_issued);
  write_u64(out, p.tree_prefetches_issued);
  write_f64(out, p.sum_prefetch_probability);
  write_u64(out, p.candidates_chosen);
  write_u64(out, p.candidates_already_cached);
  write_u64(out, p.prefetch_ejections);
  write_u64(out, p.demand_ejections);
  write_u64(out, p.predictable);
  write_u64(out, p.predictable_uncached);
  write_u64(out, p.lvc_opportunities);
  write_u64(out, p.lvc_followed);
  write_u64(out, p.lvc_checks);
  write_u64(out, p.lvc_cached);
  write_u64(out, p.tree_nodes);
  write_u64(out, p.tree_bytes);

  const auto demand_blocks = cache_.demand().blocks_lru_to_mru();
  write_u64(out, demand_blocks.size());
  for (const trace::BlockId block : demand_blocks) {
    write_u64(out, block);
  }

  const auto prefetch_entries = cache_.prefetch().entries();
  write_u64(out, prefetch_entries.size());
  for (const cache::PrefetchEntry& entry : prefetch_entries) {
    write_u64(out, entry.block);
    write_f64(out, entry.probability);
    write_u32(out, entry.depth);
    write_f64(out, entry.eject_cost);
    out.put(entry.obl ? '\1' : '\0');
    write_u64(out, entry.issued_period);
    write_f64(out, entry.completion_ms);
  }

  // Predictor state rides as an opaque, length-prefixed blob keyed by the
  // policy's FourCC tag — the engine never learns the family's format.
  const std::uint32_t tag = policy_->predictor_state_tag();
  write_u32(out, tag);
  if (tag != core::policy::kPredictorNone) {
    std::ostringstream blob;
    policy_->save_predictor_state(blob);
    const std::string bytes = std::move(blob).str();
    write_u64(out, bytes.size());
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
}

void PrefetchEngine::restore(std::istream& in) {
  if (metrics_.accesses != 0 || cache_.resident() != 0) {
    throw std::runtime_error(
        "engine snapshot restore requires a freshly constructed engine");
  }

  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    corrupt("bad magic");
  }
  const std::uint16_t version = read_u16(in);
  if (version != 1 && version != 2) {
    corrupt("unsupported version");
  }
  if (read_u64(in) != config_.cache_blocks) {
    corrupt("cache_blocks mismatch with the configured engine");
  }

  Metrics restored;
  restored.accesses = read_u64(in);
  restored.demand_hits = read_u64(in);
  restored.prefetch_hits = read_u64(in);
  restored.misses = read_u64(in);
  restored.elapsed_ms = read_f64(in);
  restored.stall_ms = read_f64(in);
  restored.disk_queue_delay_ms = read_f64(in);
  restored.disk_requests = read_u64(in);

  auto& p = restored.policy;
  p.prefetches_issued = read_u64(in);
  p.obl_prefetches_issued = read_u64(in);
  p.tree_prefetches_issued = read_u64(in);
  p.sum_prefetch_probability = read_f64(in);
  p.candidates_chosen = read_u64(in);
  p.candidates_already_cached = read_u64(in);
  p.prefetch_ejections = read_u64(in);
  p.demand_ejections = read_u64(in);
  p.predictable = read_u64(in);
  p.predictable_uncached = read_u64(in);
  p.lvc_opportunities = read_u64(in);
  p.lvc_followed = read_u64(in);
  p.lvc_checks = read_u64(in);
  p.lvc_cached = read_u64(in);
  p.tree_nodes = read_u64(in);
  p.tree_bytes = read_u64(in);

  const std::uint64_t demand_count = read_u64(in);
  if (!in || demand_count > config_.cache_blocks) {
    corrupt("demand residency exceeds the buffer pool");
  }
  for (std::uint64_t i = 0; i < demand_count; ++i) {
    const trace::BlockId block = read_u64(in);
    if (!in) {
      corrupt("truncated demand residency list");
    }
    if (cache_.contains(block)) {
      corrupt("duplicate block in demand residency list");
    }
    cache_.admit_demand(block);
  }

  const std::uint64_t prefetch_count = read_u64(in);
  if (!in || demand_count + prefetch_count > config_.cache_blocks) {
    corrupt("residency exceeds the buffer pool");
  }
  for (std::uint64_t i = 0; i < prefetch_count; ++i) {
    cache::PrefetchEntry entry;
    entry.block = read_u64(in);
    entry.probability = read_f64(in);
    entry.depth = read_u32(in);
    entry.eject_cost = read_f64(in);
    entry.obl = in.get() == '\1';
    entry.issued_period = read_u64(in);
    entry.completion_ms = read_f64(in);
    if (!in) {
      corrupt("truncated prefetch residency list");
    }
    if (cache_.contains(entry.block)) {
      corrupt("duplicate block in prefetch residency list");
    }
    cache_.admit_prefetch(entry);
  }

  if (version == 1) {
    // v1 images could only carry LZ-tree state: a flag byte followed by
    // the raw PFTR stream, exactly the bytes a tree policy's
    // load_predictor_state consumes today.
    const int tree_flag = in.get();
    if (tree_flag != '\0' && tree_flag != '\1') {
      corrupt("truncated predictor-tree flag");
    }
    if (tree_flag == '\1') {
      if (policy_->predictor_state_tag() != core::policy::kPredictorTree) {
        corrupt("snapshot carries a predictor tree but the configured "
                "policy has none");
      }
      if (!policy_->load_predictor_state(in) || !in) {
        corrupt("predictor-tree stream rejected by the policy");
      }
    }
  } else {
    const std::uint32_t tag = read_u32(in);
    if (!in) {
      corrupt("truncated predictor tag");
    }
    const std::uint32_t live_tag = policy_->predictor_state_tag();
    if (tag != live_tag) {
      corrupt("predictor kind mismatch: snapshot carries " +
              core::policy::predictor_tag_name(tag) +
              " state but the configured policy keeps " +
              core::policy::predictor_tag_name(live_tag));
    }
    if (tag != core::policy::kPredictorNone) {
      const std::uint64_t blob_bytes = read_u64(in);
      if (!in || blob_bytes > kMaxPredictorBlobBytes) {
        corrupt("implausible predictor blob length");
      }
      std::string bytes(static_cast<std::size_t>(blob_bytes), '\0');
      in.read(bytes.data(), static_cast<std::streamsize>(blob_bytes));
      if (!in) {
        corrupt("truncated predictor blob");
      }
      std::istringstream blob(std::move(bytes));
      if (!policy_->load_predictor_state(blob)) {
        corrupt("predictor blob rejected by the policy");
      }
      if (blob.peek() != std::istream::traits_type::eof()) {
        corrupt("predictor blob has trailing bytes");
      }
    }
  }

  metrics_ = restored;
  publish_observability();
}

}  // namespace pfp::engine
