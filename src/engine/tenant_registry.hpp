// Multi-tenant engine registry: the lifecycle layer the server frontend
// drives.
//
// One Tenant owns one isolated prefetching stack — a PrefetchEngine, or
// a ShardedEngine (Routing::kRuns) for large tenants — plus the tenant's
// name and a per-tenant mutex that serializes every mutating call.  The
// registry maps client-chosen 16-bit tenant ids to live tenants and owns
// the open/close/restore state machine (docs/server.md, "Tenant
// lifecycle"):
//
//     (absent) --open--> OPEN --close--> (absent)
//        |  open(dup)      |  restore(bad blob)
//        +--> kExists      +--> kBadSnapshot, state UNCHANGED
//
// Lifecycle guarantees, each pinned by tests/server/tenant_registry_test:
//   - duplicate open on a live id is rejected and the live tenant is
//     untouched;
//   - restore() builds a FRESH engine from the tenant's config, restores
//     the blob into it, and only swaps it in on success — a foreign or
//     corrupt blob leaves the learned state exactly as it was;
//   - close() first unlinks the id (new lookups fail), then acquires the
//     tenant mutex, so an in-flight ACCESS_MANY batch drains before the
//     engine is torn down.  shared_ptr keeps the tenant alive for any
//     handler that resolved it before the unlink.
//
// Threading: the registry map is guarded by its own mutex; Tenant
// mutating methods require the tenant mutex (clang -Werror=thread-safety
// enforces both).  stats() is the exception — it reads the lock-free
// observability cells and is safe from any thread, which is what the
// /metrics scrape path uses.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/prefetch_engine.hpp"
#include "engine/sharded_engine.hpp"
#include "util/thread_annotations.hpp"

namespace pfp::engine {

/// Typed lifecycle outcomes (the wire layer maps these onto its error
/// vocabulary one-to-one).
enum class TenantStatus {
  kOk,
  kExists,        ///< open() on a live id
  kNoSuchTenant,  ///< lookup/close on an absent id
  kBadConfig,     ///< engine::validate rejected the tenant config
  kBadSnapshot,   ///< restore() blob rejected; tenant state unchanged
  kUnsupported,   ///< snapshot/restore on a sharded tenant
};

struct TenantConfig {
  std::string name;  ///< metrics label (Prometheus tenant="...")
  EngineConfig engine;
  /// 0 or 1 = a single PrefetchEngine; >= 2 = ShardedEngine with this
  /// many shards under Routing::kRuns (contiguous stream runs per shard,
  /// the scale-out-replicas shape — see sharded_engine.hpp).
  std::uint32_t shards = 0;
  /// Per-shard ring capacity for sharded tenants.
  std::size_t queue_capacity = 8192;
};

/// Resolves a policy kind name ("tree-next-limit", "markov", ...) into
/// `config.engine.policy.kind`.  kBadConfig with *detail naming the junk
/// on an unknown name.  Lives here (not in the server) so the server
/// layer never includes core/ directly.
TenantStatus set_policy_by_name(TenantConfig& config, const std::string& name,
                                std::string* detail);

/// One tenant's isolated engine stack.  Mutating calls are serialized by
/// mu() — the server's frame handler locks it per request, so a tenant
/// driven from several connections still sees one total order.
class Tenant {
 public:
  /// Builds the engine(s); throws std::invalid_argument on a bad config
  /// (the registry turns that into kBadConfig before construction).
  explicit Tenant(TenantConfig config);

  [[nodiscard]] const std::string& name() const noexcept {
    return config_.name;
  }
  [[nodiscard]] const TenantConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] bool sharded() const noexcept { return sharded_ != nullptr; }

  /// The per-tenant serialization mutex; callers lock it around every
  /// mutating call below (PFP_REQUIRES enforced).
  [[nodiscard]] util::Mutex& mu() noexcept PFP_RETURN_CAPABILITY(mu_) {
    return mu_;
  }

  /// One access through the tenant's state machine.  Sharded tenants
  /// route asynchronously: the result is empty (async() semantics as in
  /// access_many).
  AccessResult access(trace::BlockId block) PFP_REQUIRES(mu_);

  /// A whole batch.  Plain tenants run it synchronously and return exact
  /// per-batch counts; sharded tenants stage/route it and return zeroed
  /// counts (STATS is the source of truth once flushed).
  BatchResult access_many(std::span<const trace::BlockId> blocks)
      PFP_REQUIRES(mu_);

  /// Deterministic metrics; sharded tenants flush and merge (so this
  /// waits for the workers to drain).
  [[nodiscard]] Metrics metrics() PFP_REQUIRES(mu_);

  /// Live observability view; any thread — this is the /metrics scrape
  /// path.  Sharded tenants read the lock-free cells directly; plain
  /// tenants briefly take mu() because restore() can swap the engine
  /// (and its cells) out from under an unlocked reader.
  [[nodiscard]] obs::EngineStats stats() const;

  /// Occupancy fraction of the busiest shard ring in [0, 1]; always 0
  /// for plain tenants.  The server's advisory backpressure flag reads
  /// this (docs/server.md, "Backpressure contract").
  [[nodiscard]] double queue_pressure() const;

  /// Persists durable state (PFEG stream).  kUnsupported for sharded
  /// tenants (per-shard predictor state does not concatenate).
  TenantStatus snapshot(std::ostream& out, std::string* detail)
      PFP_REQUIRES(mu_);

  /// Restores a PFEG blob into a freshly built engine and swaps it in
  /// on success; on ANY failure the previous engine keeps serving and
  /// *detail names the reason.
  TenantStatus restore(std::istream& in, std::string* detail)
      PFP_REQUIRES(mu_);

  /// Sharded tenants: drain rings so metrics()/teardown are exact.
  void flush() PFP_REQUIRES(mu_);

 private:
  TenantConfig config_;
  // mutable so stats() const can guard the engine-pointer read against a
  // concurrent restore() swap.
  mutable util::Mutex mu_;
  // Exactly one of the two is non-null (plain vs sharded tenant).
  std::unique_ptr<PrefetchEngine> engine_ PFP_GUARDED_BY(mu_);
  std::unique_ptr<ShardedEngine> sharded_;
};

/// Id -> tenant map plus the lifecycle rules above.  All methods are
/// safe from any thread.
class TenantRegistry {
 public:
  TenantRegistry() = default;
  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Opens a tenant under a client-chosen id.  kExists if the id is
  /// live; kBadConfig (with *detail from engine::validate) if the
  /// config is rejected.
  TenantStatus open(std::uint16_t id, TenantConfig config,
                    std::string* detail);

  /// The live tenant for an id, or null.
  [[nodiscard]] std::shared_ptr<Tenant> find(std::uint16_t id) const;

  /// Unlinks the id, then acquires the tenant mutex so any in-flight
  /// batch drains before the engine is destroyed (sharded tenants are
  /// also flushed).  kNoSuchTenant if the id is not live.
  TenantStatus close(std::uint16_t id);

  /// Stable snapshot of the live (id, tenant) pairs, id-ascending — the
  /// /metrics renderer iterates this.
  [[nodiscard]] std::vector<std::pair<std::uint16_t, std::shared_ptr<Tenant>>>
  tenants() const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable util::Mutex mu_;
  std::map<std::uint16_t, std::shared_ptr<Tenant>> tenants_
      PFP_GUARDED_BY(mu_);
};

}  // namespace pfp::engine
