// The per-access prefetching state machine (cache lookup -> predictor
// update -> candidate enumeration -> cost-benefit decision -> prefetch
// issue -> eviction), extracted from the trace-replay harness so hosts
// can embed it.
//
// One engine owns one partitioned buffer cache, one policy instance and
// one set of cost-benefit estimators, and is driven push-style:
//
//   engine::PrefetchEngine eng(config);
//   for (;;) {
//     const auto r = eng.access(next_block());
//     if (r.outcome == engine::Outcome::kMiss) { ... }
//   }
//
// The trace drivers (sim::Simulator, sim::OnlineSession) are thin shells
// over this class; the devirtualized per-policy batch loops live here so
// replay throughput and embedded behaviour can never drift apart.
// Layering: engine/ sits between core/ and sim/ and must not include
// sim/ (enforced by scripts/lint/check_conventions.py).
#pragma once

#include <iosfwd>
#include <memory>
#include <span>

#include "cache/buffer_cache.hpp"
#include "cache/disk_model.hpp"
#include "cache/stack_distance.hpp"
#include "core/costben/estimator.hpp"
#include "core/policy/factory.hpp"
#include "engine/config.hpp"
#include "engine/metrics.hpp"
#include "obs/engine_obs.hpp"
#include "trace/trace.hpp"
#include "util/phase.hpp"

namespace pfp::engine {

enum class Outcome { kDemandHit, kPrefetchHit, kMiss };

struct AccessResult {
  Outcome outcome = Outcome::kMiss;
  /// Modeled latency of this access under the timing model (ms): T_hit
  /// for hits, plus residual prefetch stall or the full driver+disk
  /// penalty for misses, plus the driver time of prefetches issued this
  /// period.  Excludes T_cpu (the caller's compute is theirs).
  double latency_ms = 0.0;
};

/// Aggregate of one access_many() batch, folded from the same per-access
/// state machine the push-one path runs.
struct BatchResult {
  std::uint64_t demand_hits = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t misses = 0;
  /// Sum of per-access latency_ms over the batch (same exclusion of
  /// T_cpu as AccessResult::latency_ms).
  double latency_ms = 0.0;
};

class PrefetchEngine {
 public:
  /// Validates the configuration (see engine::validate) and builds the
  /// policy; throws std::invalid_argument on a bad config.
  explicit PrefetchEngine(EngineConfig config);

  /// Push-style entry point: feeds one block reference through the state
  /// machine — cache access, timing charges, predictor learning,
  /// prefetch issue — and reports what happened.
  AccessResult access(trace::BlockId block);

  /// Batched push: feeds a whole run of references through the same
  /// state machine with the per-access setup hoisted out of the inner
  /// loop — the Context is built once, the policy dispatch is resolved
  /// once to a devirtualized loop (like run_trace), and the
  /// observability mirror is published once per batch instead of once
  /// per access (one stats-gate write section; the trace ring still
  /// records every access).  Bit-identical to calling access() for each
  /// block in order — metrics, decisions and final observability all
  /// match; only the live-scrape granularity coarsens to batch
  /// boundaries.  This is the shard workers' pull path and the fast
  /// path run_trace() replays through.
  BatchResult access_many(std::span<const trace::BlockId> blocks);

  /// Replay entry point for one trace position; identical to access()
  /// except oracle policies can see the rest of the trace.
  void step(const trace::Trace& trace, std::size_t index);

  /// Replay entry point for a whole trace: dispatches to a devirtualized
  /// per-policy loop (qualified calls on the exact dynamic type the
  /// factory guarantees), falling back to the vtable for unknown kinds.
  /// Bit-identical to calling step() for each index in order.
  void run_trace(const trace::Trace& trace);

  [[nodiscard]] const cache::BufferCache& buffer_cache() const noexcept {
    return cache_;
  }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const core::policy::Prefetcher& prefetcher() const noexcept {
    return *policy_;
  }
  [[nodiscard]] const EngineConfig& config() const noexcept {
    return config_;
  }

  /// Persists the engine's durable state as a compact binary stream: the
  /// trained predictor tree (via core/tree/serialize), both cache
  /// residency sets, and the accumulated metrics.  Estimator EWMAs and
  /// in-flight disk state are transient and re-warm after restore.
  void snapshot(std::ostream& out) const;

  /// Rebuilds snapshot() state into this engine.  The engine must be
  /// freshly constructed with a matching cache size and policy shape;
  /// throws std::runtime_error on malformed input or mismatch.
  void restore(std::istream& in);

  /// Live observability snapshot: lock-free counters/gauges, per-phase
  /// latency histograms and trace-ring occupancy.  Safe to call from any
  /// thread while another thread drives access() — the read retries a
  /// seqlock for a consistent cut (docs/observability.md).  All zeros
  /// when PFP_OBS is compiled out.
  [[nodiscard]] obs::EngineStats stats() const { return obs_.stats(); }

  /// The live observability backend (trace-ring access for dump tools).
  [[nodiscard]] const obs::EngineObs& observability() const noexcept {
    return obs_;
  }

  /// Writes this engine's event ring as Chrome trace_event JSON
  /// (chrome://tracing / Perfetto).  Quiescent-read contract: call from
  /// the driving thread, or after the driver has provably stopped.
  void write_chrome_trace(std::ostream& out) const;

 private:
  // The per-access pipeline is shared verbatim between the push/step
  // paths (virtual dispatch) and the devirtualized per-policy loops
  // run_trace() dispatches to, so the two can never drift apart.
  // `PolicyRef` is a dispatch proxy: Virtual goes through the vtable,
  // Direct<P> makes qualified calls on the exact dynamic type.
  // `publish_each` lets the batched paths hoist the per-access
  // observability publish out of the inner loop (they publish once per
  // batch); it never affects metrics or decisions.
  template <typename PolicyRef>
  core::policy::AccessOutcome step_one(
      PolicyRef policy, trace::BlockId block, std::uint64_t period,
      std::span<const trace::TraceRecord> upcoming,
      core::policy::Context& ctx, bool publish_each = true);
  template <typename PolicyRef>
  void run_loop(PolicyRef policy, const trace::Trace& trace);
  template <typename PolicyRef>
  void run_blocks(PolicyRef policy, std::span<const trace::BlockId> blocks,
                  core::policy::Context& ctx);
  template <typename PolicyT>
  void run_as(const trace::Trace& trace);
  [[nodiscard]] core::policy::Context make_context();
  /// Publishes the deterministic metrics into the lock-free obs cells
  /// (one SnapshotGate write section); no-op when PFP_OBS is off.
  void publish_observability();

  EngineConfig config_;
  cache::BufferCache cache_;
  cache::DiskArray disks_;
  cache::StackDistanceEstimator stack_;
  core::costben::Estimators estimators_;
  std::unique_ptr<core::policy::Prefetcher> policy_;
  Metrics metrics_;
  obs::EngineObs obs_;
  util::PhaseStopwatch phase_clock_;
};

}  // namespace pfp::engine
