// Per-run metrics and the derived quantities the paper reports.
//
// Lived in sim/ until the engine extraction; the engine accumulates them
// per access, the sim drivers only read them.  sim::Metrics remains as an
// alias for source compatibility.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/policy/context.hpp"

namespace pfp::engine {

/// Raw counters accumulated over a run plus derived accessors matching
/// the paper's figures/tables.  All rates are fractions in [0, 1];
/// callers format them as percentages.
struct Metrics {
  std::uint64_t accesses = 0;
  std::uint64_t demand_hits = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t misses = 0;

  /// Simulated elapsed time (ms) under the Section 3 timing model.
  double elapsed_ms = 0.0;
  /// Total CPU stall time (ms) included in elapsed_ms.
  double stall_ms = 0.0;
  /// Time disk requests spent queued behind other requests (finite-disk
  /// configurations only; always 0 under the paper's infinite array).
  double disk_queue_delay_ms = 0.0;
  /// Total disk reads issued (demand fetches + prefetches).
  std::uint64_t disk_requests = 0;

  core::policy::PolicyMetrics policy;

  // --- derived -----------------------------------------------------------

  /// Miss rate in the combined demand + prefetch cache (Figure 6 y-axis).
  [[nodiscard]] double miss_rate() const;
  /// Fraction of accesses served by either cache.
  [[nodiscard]] double hit_rate() const { return 1.0 - miss_rate(); }
  /// Fraction of prefetched blocks that were referenced before ejection
  /// (Figure 9 / Figure 12 y-axis).
  [[nodiscard]] double prefetch_cache_hit_rate() const;
  /// Blocks prefetched per access period, the measured s (Fig 8 / 11).
  [[nodiscard]] double prefetches_per_access() const;
  /// Mean tree-assigned probability of prefetched blocks (Figure 10).
  [[nodiscard]] double mean_prefetch_probability() const;
  /// Fraction of chosen candidates already resident (Figure 7).
  [[nodiscard]] double candidates_cached_fraction() const;
  /// Prediction accuracy: predictable accesses / accesses (Table 2).
  [[nodiscard]] double prediction_accuracy() const;
  /// Of predictable accesses, fraction NOT already cached (Figure 14).
  [[nodiscard]] double predictable_uncached_fraction() const;
  /// Last-visited-child revisit rate (Table 3).
  [[nodiscard]] double lvc_revisit_rate() const;
  /// Fraction of last-visited children already cached (Figure 16).
  [[nodiscard]] double lvc_cached_fraction() const;
  /// Extra disk traffic from prefetching, relative to demand fetches.
  [[nodiscard]] double prefetch_traffic_ratio() const;

  /// Multi-line summary for logs/examples.
  [[nodiscard]] std::string summary() const;
};

/// Deterministic merge of per-shard metrics: every counter and
/// accumulator is folded in shard-index order, so the result depends only
/// on the per-shard values, never on which shard finished first
/// (order-independence is proven by test).  Summed elapsed_ms/stall_ms
/// are aggregate per-shard virtual time — shards run concurrently, so
/// wall-clock-style readings should use the max over shards instead.
[[nodiscard]] Metrics merge_metrics(std::span<const Metrics> shards);

}  // namespace pfp::engine
