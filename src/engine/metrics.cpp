#include "engine/metrics.hpp"

#include <sstream>

#include "util/string_utils.hpp"

namespace pfp::engine {

namespace {

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

double Metrics::miss_rate() const { return ratio(misses, accesses); }

double Metrics::prefetch_cache_hit_rate() const {
  return ratio(prefetch_hits, policy.prefetches_issued);
}

double Metrics::prefetches_per_access() const {
  return accesses == 0 ? 0.0
                       : static_cast<double>(policy.prefetches_issued) /
                             static_cast<double>(accesses);
}

double Metrics::mean_prefetch_probability() const {
  return policy.tree_prefetches_issued == 0
             ? 0.0
             : policy.sum_prefetch_probability /
                   static_cast<double>(policy.tree_prefetches_issued);
}

double Metrics::candidates_cached_fraction() const {
  return ratio(policy.candidates_already_cached, policy.candidates_chosen);
}

double Metrics::prediction_accuracy() const {
  return ratio(policy.predictable, accesses);
}

double Metrics::predictable_uncached_fraction() const {
  return ratio(policy.predictable_uncached, policy.predictable);
}

double Metrics::lvc_revisit_rate() const {
  return ratio(policy.lvc_followed, policy.lvc_opportunities);
}

double Metrics::lvc_cached_fraction() const {
  return ratio(policy.lvc_cached, policy.lvc_checks);
}

double Metrics::prefetch_traffic_ratio() const {
  return ratio(policy.prefetches_issued, misses);
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "accesses:            " << util::format_count(accesses) << "\n"
     << "miss rate:           " << util::format_percent(miss_rate()) << "\n"
     << "demand hits:         " << util::format_count(demand_hits) << "\n"
     << "prefetch hits:       " << util::format_count(prefetch_hits) << "\n"
     << "prefetches issued:   " << util::format_count(policy.prefetches_issued)
     << " (" << util::format_double(prefetches_per_access(), 3)
     << " per access)\n"
     << "prefetch hit rate:   "
     << util::format_percent(prefetch_cache_hit_rate()) << "\n"
     << "prediction accuracy: " << util::format_percent(prediction_accuracy())
     << "\n"
     << "elapsed (simulated): " << util::format_double(elapsed_ms / 1000.0, 2)
     << " s (stall " << util::format_double(stall_ms / 1000.0, 2) << " s)\n";
  return os.str();
}


Metrics merge_metrics(std::span<const Metrics> shards) {
  Metrics merged;
  // Plain index-order fold: double addition is not associative, so a
  // completion-order fold would make the merged doubles depend on thread
  // scheduling.  Folding by shard index makes the merge a pure function
  // of the per-shard values.
  for (const Metrics& m : shards) {
    merged.accesses += m.accesses;
    merged.demand_hits += m.demand_hits;
    merged.prefetch_hits += m.prefetch_hits;
    merged.misses += m.misses;
    merged.elapsed_ms += m.elapsed_ms;
    merged.stall_ms += m.stall_ms;
    merged.disk_queue_delay_ms += m.disk_queue_delay_ms;
    merged.disk_requests += m.disk_requests;

    merged.policy.prefetches_issued += m.policy.prefetches_issued;
    merged.policy.obl_prefetches_issued += m.policy.obl_prefetches_issued;
    merged.policy.tree_prefetches_issued += m.policy.tree_prefetches_issued;
    merged.policy.sum_prefetch_probability +=
        m.policy.sum_prefetch_probability;
    merged.policy.candidates_chosen += m.policy.candidates_chosen;
    merged.policy.candidates_already_cached +=
        m.policy.candidates_already_cached;
    merged.policy.prefetch_ejections += m.policy.prefetch_ejections;
    merged.policy.demand_ejections += m.policy.demand_ejections;
    merged.policy.predictable += m.policy.predictable;
    merged.policy.predictable_uncached += m.policy.predictable_uncached;
    merged.policy.lvc_opportunities += m.policy.lvc_opportunities;
    merged.policy.lvc_followed += m.policy.lvc_followed;
    merged.policy.lvc_checks += m.policy.lvc_checks;
    merged.policy.lvc_cached += m.policy.lvc_cached;
    merged.policy.tree_nodes += m.policy.tree_nodes;
    merged.policy.tree_bytes += m.policy.tree_bytes;
  }
  return merged;
}

}  // namespace pfp::engine
