#include "engine/config.hpp"

#include <stdexcept>
#include <string>

namespace pfp::engine {

namespace {

// !(value > 0) instead of value <= 0 so NaN is rejected too.
void require_positive(double value, const char* field) {
  if (!(value > 0.0)) {
    throw std::invalid_argument(std::string("EngineConfig: ") + field +
                                " must be positive (got " +
                                std::to_string(value) + ")");
  }
}

}  // namespace

void validate(const EngineConfig& config) {
  if (config.cache_blocks == 0) {
    throw std::invalid_argument(
        "EngineConfig: cache_blocks must be at least 1");
  }
  require_positive(config.timing.t_hit, "timing.t_hit");
  require_positive(config.timing.t_driver, "timing.t_driver");
  require_positive(config.timing.t_disk, "timing.t_disk");
  require_positive(config.timing.t_cpu, "timing.t_cpu");
  core::policy::validate_spec(config.policy);
  // A runaway ring would dwarf the buffer cache itself; 2^24 events is
  // ~640 MiB and already far past any sensible bound.
  if (config.obs.trace_capacity > (std::size_t{1} << 24)) {
    throw std::invalid_argument(
        "EngineConfig: obs.trace_capacity must be at most 2^24 events");
  }
}

}  // namespace pfp::engine
