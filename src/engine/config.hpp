// Engine configuration: everything a PrefetchEngine needs to run.
//
// Historically this struct lived in the simulator (sim::SimConfig); the
// engine extraction moved it below the sim layer so embedding hosts can
// construct engines without pulling in the trace-replay harness.
// sim::SimConfig remains as an alias for source compatibility.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/costben/timing_model.hpp"
#include "core/policy/factory.hpp"
#include "obs/engine_obs.hpp"

namespace pfp::engine {

struct EngineConfig {
  std::size_t cache_blocks = 1024;  ///< combined demand+prefetch capacity
  /// Number of disks in the array; 0 = the paper's infinite-disk
  /// assumption (every request completes in exactly T_disk).
  std::uint32_t disks = 0;
  core::costben::TimingParams timing;
  core::policy::PolicySpec policy;
  /// Observability knobs (docs/observability.md).  Counters are always
  /// live when PFP_OBS is compiled in; phase timers and the event ring
  /// are opt-in here.  Never affects prefetch decisions.
  obs::ObsOptions obs;
};

/// Checks the configuration invariants the per-access state machine
/// depends on: a non-empty buffer pool, strictly positive timing
/// parameters (a zero or negative T_* silently corrupts every Eq. 1-14
/// decision downstream), and a well-formed policy spec.  Throws
/// std::invalid_argument with a message naming the offending field.
/// PrefetchEngine's constructor calls this on every configuration.
void validate(const EngineConfig& config);

}  // namespace pfp::engine
