// One client's protocol session: the transport-independent half of the
// server.
//
// A Session owns the byte-stream reassembly buffer and the reply queue
// for one connection.  The socket event loop (server.cpp) feeds it raw
// reads via ingest() and flushes out(); the protocol-fuzz harness
// (fuzz.cpp) feeds it mutated corpora directly, so the fuzzed code path
// IS the production code path — there is no separate "test decoder".
//
// Request handling is synchronous and in arrival order.  Tenant state is
// touched only under the tenant's own mutex (engine/tenant_registry.hpp),
// so many sessions can drive distinct tenants in parallel while one
// tenant driven from many sessions still sees a single total order.
//
// Error discipline (docs/server.md, "Errors"): framing errors that make
// the stream un-resyncable (bad magic/version, implausible length) emit
// one kError frame and latch fatal() — the transport should flush and
// close.  Everything else (unknown type, short payload, absent tenant,
// over-limit batch, ...) gets a typed kError reply and the session keeps
// going.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "engine/config.hpp"
#include "engine/tenant_registry.hpp"
#include "server/wire.hpp"

namespace pfp::server {

struct SessionConfig {
  /// Hard per-frame batch bound: an ACCESS_MANY with more blocks is
  /// rejected with kBackpressure (split and retry).  Deterministic by
  /// design — the reject depends only on the frame, never on load.
  std::size_t max_batch = 1u << 16;
  /// Advisory threshold: replies carry kFlagBackpressure once the
  /// busiest shard ring of the addressed tenant is this full (reads the
  /// queue-occupancy gauges; plain tenants never trip it).
  double pressure_threshold = 0.75;
  /// Engine fields TENANT_OPEN does not carry (timing model, obs knobs)
  /// come from this template; the request supplies cache size, policy
  /// and shard count.
  engine::EngineConfig base_engine;
};

/// engine::Metrics -> WireMetrics, field for field: the STATS reply
/// payload.  Public so load_gen's --verify-replay compares the served
/// stream against an in-process replay through the exact projection the
/// server uses.
[[nodiscard]] wire::WireMetrics to_wire_metrics(const engine::Metrics& m);

class Session {
 public:
  Session(engine::TenantRegistry& registry, const SessionConfig& config)
      : registry_(registry), config_(config) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Feeds bytes off the wire; decodes and handles every complete frame,
  /// appending replies to out().  Returns false once the session is
  /// fatal (the kError reply is already queued; flush then close).
  bool ingest(std::span<const std::uint8_t> bytes);

  /// Reply bytes awaiting transmission; the transport consumes a prefix
  /// and calls consumed() with how much it wrote.
  [[nodiscard]] const std::vector<std::uint8_t>& out() const noexcept {
    return out_;
  }
  void consumed(std::size_t bytes);

  [[nodiscard]] bool fatal() const noexcept { return fatal_; }

  /// Frames handled since construction (fuzz/test instrumentation).
  [[nodiscard]] std::uint64_t frames_handled() const noexcept {
    return frames_handled_;
  }
  /// kError replies emitted (recoverable and fatal).
  [[nodiscard]] std::uint64_t errors_sent() const noexcept {
    return errors_sent_;
  }

 private:
  void handle_frame(const wire::Frame& frame);
  void reply(const wire::FrameHeader& request, wire::MsgType type,
             std::uint8_t flags, std::span<const std::uint8_t> payload);
  void reply_error(const wire::FrameHeader& request, wire::ErrorCode code,
                   std::string_view detail);

  // Per-type handlers; `tenant` is pre-resolved for the tenant-scoped ops.
  void handle_tenant_open(const wire::Frame& frame);
  void handle_tenant_close(const wire::Frame& frame);
  void handle_access(const wire::Frame& frame, engine::Tenant& tenant);
  void handle_access_many(const wire::Frame& frame, engine::Tenant& tenant);
  void handle_stats(const wire::Frame& frame, engine::Tenant& tenant);
  void handle_snapshot(const wire::Frame& frame, engine::Tenant& tenant);
  void handle_restore(const wire::Frame& frame, engine::Tenant& tenant);

  engine::TenantRegistry& registry_;
  SessionConfig config_;
  std::vector<std::uint8_t> in_;
  std::vector<std::uint8_t> out_;
  bool fatal_ = false;
  std::uint64_t frames_handled_ = 0;
  std::uint64_t errors_sent_ = 0;
  // Scratch batch buffer, reused across ACCESS_MANY frames.
  std::vector<trace::BlockId> batch_;
};

}  // namespace pfp::server
