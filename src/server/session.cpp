#include "server/session.hpp"

#include <sstream>
#include <string>
#include <utility>

#include "util/thread_annotations.hpp"

namespace pfp::server {

namespace {

wire::ErrorCode to_wire(engine::TenantStatus status) {
  switch (status) {
    case engine::TenantStatus::kExists:
      return wire::ErrorCode::kTenantExists;
    case engine::TenantStatus::kNoSuchTenant:
      return wire::ErrorCode::kNoSuchTenant;
    case engine::TenantStatus::kBadConfig:
      return wire::ErrorCode::kBadConfig;
    case engine::TenantStatus::kBadSnapshot:
      return wire::ErrorCode::kBadSnapshot;
    case engine::TenantStatus::kUnsupported:
      return wire::ErrorCode::kUnsupported;
    case engine::TenantStatus::kOk:
      break;
  }
  return wire::ErrorCode::kInternal;
}

}  // namespace

wire::WireMetrics to_wire_metrics(const engine::Metrics& m) {
  wire::WireMetrics w;
  w.accesses = m.accesses;
  w.demand_hits = m.demand_hits;
  w.prefetch_hits = m.prefetch_hits;
  w.misses = m.misses;
  w.elapsed_ms = m.elapsed_ms;
  w.stall_ms = m.stall_ms;
  w.disk_queue_delay_ms = m.disk_queue_delay_ms;
  w.disk_requests = m.disk_requests;
  w.prefetches_issued = m.policy.prefetches_issued;
  w.obl_prefetches_issued = m.policy.obl_prefetches_issued;
  w.tree_prefetches_issued = m.policy.tree_prefetches_issued;
  w.sum_prefetch_probability = m.policy.sum_prefetch_probability;
  w.candidates_chosen = m.policy.candidates_chosen;
  w.candidates_already_cached = m.policy.candidates_already_cached;
  w.prefetch_ejections = m.policy.prefetch_ejections;
  w.demand_ejections = m.policy.demand_ejections;
  w.predictable = m.policy.predictable;
  w.predictable_uncached = m.policy.predictable_uncached;
  w.lvc_opportunities = m.policy.lvc_opportunities;
  w.lvc_followed = m.policy.lvc_followed;
  w.lvc_checks = m.policy.lvc_checks;
  w.lvc_cached = m.policy.lvc_cached;
  w.tree_nodes = m.policy.tree_nodes;
  w.tree_bytes = m.policy.tree_bytes;
  return w;
}

bool Session::ingest(std::span<const std::uint8_t> bytes) {
  if (fatal_) {
    return false;
  }
  in_.insert(in_.end(), bytes.begin(), bytes.end());
  std::size_t pos = 0;
  while (!fatal_) {
    const wire::DecodeResult result = wire::decode(
        std::span<const std::uint8_t>(in_).subspan(pos));
    if (result.status == wire::DecodeStatus::kNeedMore) {
      break;
    }
    if (result.status == wire::DecodeStatus::kError) {
      // The stream cannot be re-synced; name the reason and latch fatal.
      fatal_ = true;
      reply_error(wire::FrameHeader{}, result.error,
                  "connection-fatal framing error");
      break;
    }
    handle_frame(result.frame);
    pos += result.consumed;
  }
  if (pos > 0) {
    in_.erase(in_.begin(),
              in_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  return !fatal_;
}

void Session::consumed(std::size_t bytes) {
  out_.erase(out_.begin(), out_.begin() + static_cast<std::ptrdiff_t>(bytes));
}

void Session::reply(const wire::FrameHeader& request, wire::MsgType type,
                    std::uint8_t flags,
                    std::span<const std::uint8_t> payload) {
  wire::FrameHeader header;
  header.type = type;
  header.flags = flags;
  header.tenant = request.tenant;
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  header.serial = request.serial;
  wire::append_frame(out_, header, payload);
}

void Session::reply_error(const wire::FrameHeader& request,
                          wire::ErrorCode code, std::string_view detail) {
  std::vector<std::uint8_t> payload;
  wire::encode_error(payload, wire::ErrorReply{code, std::string(detail)});
  reply(request, wire::MsgType::kError, 0, payload);
  ++errors_sent_;
}

void Session::handle_frame(const wire::Frame& frame) {
  ++frames_handled_;
  const wire::FrameHeader& h = frame.header;
  switch (h.type) {
    case wire::MsgType::kPing:
      if (!frame.payload.empty()) {
        reply_error(h, wire::ErrorCode::kBadPayload,
                    "PING carries no payload");
        return;
      }
      reply(h, wire::MsgType::kPingReply, 0, {});
      return;
    case wire::MsgType::kTenantOpen:
      handle_tenant_open(frame);
      return;
    case wire::MsgType::kTenantClose:
      handle_tenant_close(frame);
      return;
    case wire::MsgType::kAccess:
    case wire::MsgType::kAccessMany:
    case wire::MsgType::kStats:
    case wire::MsgType::kSnapshot:
    case wire::MsgType::kRestore:
      break;
    default:
      reply_error(h, wire::ErrorCode::kUnknownType,
                  "unknown or reply-typed message");
      return;
  }

  const std::shared_ptr<engine::Tenant> tenant = registry_.find(h.tenant);
  if (tenant == nullptr) {
    reply_error(h, wire::ErrorCode::kNoSuchTenant, "tenant id not open");
    return;
  }
  switch (h.type) {
    case wire::MsgType::kAccess:
      handle_access(frame, *tenant);
      return;
    case wire::MsgType::kAccessMany:
      handle_access_many(frame, *tenant);
      return;
    case wire::MsgType::kStats:
      handle_stats(frame, *tenant);
      return;
    case wire::MsgType::kSnapshot:
      handle_snapshot(frame, *tenant);
      return;
    case wire::MsgType::kRestore:
      handle_restore(frame, *tenant);
      return;
    default:
      reply_error(h, wire::ErrorCode::kInternal, "unreachable dispatch");
      return;
  }
}

void Session::handle_tenant_open(const wire::Frame& frame) {
  const auto request = wire::parse_tenant_open(frame.payload);
  if (!request.has_value()) {
    reply_error(frame.header, wire::ErrorCode::kBadPayload,
                "malformed TENANT_OPEN payload");
    return;
  }
  engine::TenantConfig config;
  config.name = request->name;
  config.engine = config_.base_engine;
  config.engine.cache_blocks =
      static_cast<std::size_t>(request->cache_blocks);
  config.shards = request->shards;
  std::string detail;
  engine::TenantStatus status =
      engine::set_policy_by_name(config, request->policy, &detail);
  if (status != engine::TenantStatus::kOk) {
    reply_error(frame.header, to_wire(status), detail);
    return;
  }
  status = registry_.open(frame.header.tenant, std::move(config), &detail);
  if (status != engine::TenantStatus::kOk) {
    reply_error(frame.header, to_wire(status), detail);
    return;
  }
  reply(frame.header, wire::MsgType::kTenantOpenReply, 0, {});
}

void Session::handle_tenant_close(const wire::Frame& frame) {
  if (!frame.payload.empty()) {
    reply_error(frame.header, wire::ErrorCode::kBadPayload,
                "TENANT_CLOSE carries no payload");
    return;
  }
  const engine::TenantStatus status = registry_.close(frame.header.tenant);
  if (status != engine::TenantStatus::kOk) {
    reply_error(frame.header, to_wire(status), "tenant id not open");
    return;
  }
  reply(frame.header, wire::MsgType::kTenantCloseReply, 0, {});
}

void Session::handle_access(const wire::Frame& frame,
                            engine::Tenant& tenant) {
  wire::Reader reader(frame.payload);
  const trace::BlockId block = reader.read_u64();
  if (!reader.exhausted()) {
    reply_error(frame.header, wire::ErrorCode::kBadPayload,
                "ACCESS payload is one u64 block id");
    return;
  }
  engine::AccessResult result;
  {
    util::MutexLock lock(tenant.mu());
    result = tenant.access(block);
  }
  wire::BatchReply batch;
  std::uint8_t flags = 0;
  if (tenant.sharded()) {
    // Routed asynchronously; counts are unknown until the shard drains.
    flags |= wire::kFlagAsync;
  } else {
    switch (result.outcome) {
      case engine::Outcome::kDemandHit:
        batch.demand_hits = 1;
        break;
      case engine::Outcome::kPrefetchHit:
        batch.prefetch_hits = 1;
        break;
      case engine::Outcome::kMiss:
        batch.misses = 1;
        break;
    }
    batch.latency_ms = result.latency_ms;
  }
  if (tenant.queue_pressure() >= config_.pressure_threshold) {
    flags |= wire::kFlagBackpressure;
  }
  std::vector<std::uint8_t> payload;
  wire::encode_batch_reply(payload, batch);
  reply(frame.header, wire::MsgType::kAccessReply, flags, payload);
}

void Session::handle_access_many(const wire::Frame& frame,
                                 engine::Tenant& tenant) {
  wire::Reader reader(frame.payload);
  const std::uint32_t count = reader.read_u32();
  if (!reader.ok() || reader.remaining() != std::size_t{count} * 8) {
    reply_error(frame.header, wire::ErrorCode::kBadPayload,
                "ACCESS_MANY count does not match payload length");
    return;
  }
  if (count > config_.max_batch) {
    // Hard, deterministic reject: depends only on the frame, never on
    // load, so a client can size batches once and trust them forever.
    reply_error(frame.header, wire::ErrorCode::kBackpressure,
                "batch exceeds max_batch; split and retry");
    return;
  }
  batch_.clear();
  batch_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    batch_.push_back(reader.read_u64());
  }
  engine::BatchResult result;
  {
    util::MutexLock lock(tenant.mu());
    result = tenant.access_many(batch_);
  }
  wire::BatchReply batch;
  batch.demand_hits = result.demand_hits;
  batch.prefetch_hits = result.prefetch_hits;
  batch.misses = result.misses;
  batch.latency_ms = result.latency_ms;
  std::uint8_t flags = 0;
  if (tenant.sharded()) {
    flags |= wire::kFlagAsync;
  }
  if (tenant.queue_pressure() >= config_.pressure_threshold) {
    flags |= wire::kFlagBackpressure;
  }
  std::vector<std::uint8_t> payload;
  wire::encode_batch_reply(payload, batch);
  reply(frame.header, wire::MsgType::kAccessManyReply, flags, payload);
}

void Session::handle_stats(const wire::Frame& frame,
                           engine::Tenant& tenant) {
  if (!frame.payload.empty()) {
    reply_error(frame.header, wire::ErrorCode::kBadPayload,
                "STATS carries no payload");
    return;
  }
  engine::Metrics metrics;
  {
    util::MutexLock lock(tenant.mu());
    metrics = tenant.metrics();
  }
  std::vector<std::uint8_t> payload;
  wire::encode_metrics(payload, to_wire_metrics(metrics));
  reply(frame.header, wire::MsgType::kStatsReply, 0, payload);
}

void Session::handle_snapshot(const wire::Frame& frame,
                              engine::Tenant& tenant) {
  if (!frame.payload.empty()) {
    reply_error(frame.header, wire::ErrorCode::kBadPayload,
                "SNAPSHOT carries no payload");
    return;
  }
  std::ostringstream blob;
  std::string detail;
  engine::TenantStatus status;
  {
    util::MutexLock lock(tenant.mu());
    status = tenant.snapshot(blob, &detail);
  }
  if (status != engine::TenantStatus::kOk) {
    reply_error(frame.header, to_wire(status), detail);
    return;
  }
  const std::string bytes = std::move(blob).str();
  if (bytes.size() > wire::kMaxPayload) {
    reply_error(frame.header, wire::ErrorCode::kInternal,
                "snapshot exceeds the frame payload bound");
    return;
  }
  reply(frame.header, wire::MsgType::kSnapshotReply, 0,
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(bytes.data()),
            bytes.size()));
}

void Session::handle_restore(const wire::Frame& frame,
                             engine::Tenant& tenant) {
  std::string bytes;
  if (!frame.payload.empty()) {
    bytes.assign(reinterpret_cast<const char*>(frame.payload.data()),
                 frame.payload.size());
  }
  std::istringstream blob(std::move(bytes));
  std::string detail;
  engine::TenantStatus status;
  {
    util::MutexLock lock(tenant.mu());
    status = tenant.restore(blob, &detail);
  }
  if (status != engine::TenantStatus::kOk) {
    reply_error(frame.header, to_wire(status), detail);
    return;
  }
  reply(frame.header, wire::MsgType::kRestoreReply, 0, {});
}

}  // namespace pfp::server
