#include "server/wire.hpp"

#include <bit>
#include <cstring>

namespace pfp::server::wire {

namespace {

constexpr std::size_t kMaxTenantName = 255;

/// Little-endian u16/u32/u64 reads from a raw pointer (bounds already
/// checked by the caller).
std::uint16_t load_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

bool known_type(std::uint8_t t) {
  switch (static_cast<MsgType>(t)) {
    case MsgType::kAccess:
    case MsgType::kAccessMany:
    case MsgType::kStats:
    case MsgType::kSnapshot:
    case MsgType::kRestore:
    case MsgType::kTenantOpen:
    case MsgType::kTenantClose:
    case MsgType::kPing:
    case MsgType::kAccessReply:
    case MsgType::kAccessManyReply:
    case MsgType::kStatsReply:
    case MsgType::kSnapshotReply:
    case MsgType::kRestoreReply:
    case MsgType::kTenantOpenReply:
    case MsgType::kTenantCloseReply:
    case MsgType::kPingReply:
    case MsgType::kError:
      return true;
  }
  return false;
}

}  // namespace

std::string_view error_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadMagic:
      return "bad-magic";
    case ErrorCode::kBadVersion:
      return "bad-version";
    case ErrorCode::kOversized:
      return "oversized";
    case ErrorCode::kUnknownType:
      return "unknown-type";
    case ErrorCode::kBadPayload:
      return "bad-payload";
    case ErrorCode::kNoSuchTenant:
      return "no-such-tenant";
    case ErrorCode::kTenantExists:
      return "tenant-exists";
    case ErrorCode::kBadConfig:
      return "bad-config";
    case ErrorCode::kBadSnapshot:
      return "bad-snapshot";
    case ErrorCode::kBackpressure:
      return "backpressure";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

DecodeResult decode(std::span<const std::uint8_t> buf) {
  DecodeResult result;
  if (buf.size() < kHeaderSize) {
    // A partial header can already be provably garbage: reject a wrong
    // magic/version prefix without waiting for bytes that will never
    // make it valid.
    const std::size_t check = buf.size() < 4 ? buf.size() : 4;
    for (std::size_t i = 0; i < check && i < 3; ++i) {
      if (buf[i] != kMagic[i]) {
        result.status = DecodeStatus::kError;
        result.error = ErrorCode::kBadMagic;
        return result;
      }
    }
    if (buf.size() >= 4 && buf[3] != kVersion) {
      result.status = DecodeStatus::kError;
      result.error = ErrorCode::kBadVersion;
      return result;
    }
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  if (std::memcmp(buf.data(), kMagic, 3) != 0) {
    result.status = DecodeStatus::kError;
    result.error = ErrorCode::kBadMagic;
    return result;
  }
  if (buf[3] != kVersion) {
    result.status = DecodeStatus::kError;
    result.error = ErrorCode::kBadVersion;
    return result;
  }
  FrameHeader header;
  header.type = static_cast<MsgType>(buf[4]);
  header.flags = buf[5];
  header.tenant = load_u16(buf.data() + 6);
  header.payload_len = load_u32(buf.data() + 8);
  header.serial = load_u32(buf.data() + 12);
  if (header.payload_len > kMaxPayload) {
    // The framing itself is intact but the declared length is beyond
    // anything this protocol produces; skipping it would stall the
    // connection for up to 4 GiB of garbage, so treat it as fatal.
    result.status = DecodeStatus::kError;
    result.error = ErrorCode::kOversized;
    return result;
  }
  const std::size_t total = kHeaderSize + header.payload_len;
  if (buf.size() < total) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  // An unknown type is NOT a framing error: the length field still
  // tells us where the frame ends, so the caller can reply kUnknownType
  // and keep the connection.  The handler makes that decision; decode
  // just hands the frame through.
  (void)known_type(static_cast<std::uint8_t>(header.type));
  result.status = DecodeStatus::kFrame;
  result.frame.header = header;
  result.frame.payload = buf.subspan(kHeaderSize, header.payload_len);
  result.consumed = total;
  return result;
}

void append_frame(std::vector<std::uint8_t>& out, const FrameHeader& header,
                  std::span<const std::uint8_t> payload) {
  out.reserve(out.size() + kHeaderSize + payload.size());
  out.push_back(kMagic[0]);
  out.push_back(kMagic[1]);
  out.push_back(kMagic[2]);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(header.type));
  out.push_back(header.flags);
  put_u16(out, header.tenant);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, header.serial);
  out.insert(out.end(), payload.begin(), payload.end());
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, std::string_view s) {
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

bool Reader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint16_t Reader::read_u16() {
  if (!take(2)) {
    return 0;
  }
  const std::uint16_t v = load_u16(data_.data() + pos_);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::read_u32() {
  if (!take(4)) {
    return 0;
  }
  const std::uint32_t v = load_u32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::read_u64() {
  if (!take(8)) {
    return 0;
  }
  const std::uint64_t v = load_u64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

double Reader::read_f64() { return std::bit_cast<double>(read_u64()); }

std::span<const std::uint8_t> Reader::read_bytes(std::size_t n) {
  if (!take(n)) {
    return {};
  }
  const auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

std::string Reader::read_string() {
  const std::uint16_t len = read_u16();
  const auto bytes = read_bytes(len);
  return std::string(bytes.begin(), bytes.end());
}

void encode_tenant_open(std::vector<std::uint8_t>& out,
                        const TenantOpenRequest& req) {
  put_string(out, req.name);
  put_string(out, req.policy);
  put_u64(out, req.cache_blocks);
  put_u32(out, req.shards);
}

std::optional<TenantOpenRequest> parse_tenant_open(
    std::span<const std::uint8_t> payload) {
  Reader r(payload);
  TenantOpenRequest req;
  req.name = r.read_string();
  req.policy = r.read_string();
  req.cache_blocks = r.read_u64();
  req.shards = r.read_u32();
  if (!r.exhausted() || req.name.empty() ||
      req.name.size() > kMaxTenantName || req.policy.empty()) {
    return std::nullopt;
  }
  return req;
}

void encode_metrics(std::vector<std::uint8_t>& out, const WireMetrics& m) {
  put_u64(out, m.accesses);
  put_u64(out, m.demand_hits);
  put_u64(out, m.prefetch_hits);
  put_u64(out, m.misses);
  put_f64(out, m.elapsed_ms);
  put_f64(out, m.stall_ms);
  put_f64(out, m.disk_queue_delay_ms);
  put_u64(out, m.disk_requests);
  put_u64(out, m.prefetches_issued);
  put_u64(out, m.obl_prefetches_issued);
  put_u64(out, m.tree_prefetches_issued);
  put_f64(out, m.sum_prefetch_probability);
  put_u64(out, m.candidates_chosen);
  put_u64(out, m.candidates_already_cached);
  put_u64(out, m.prefetch_ejections);
  put_u64(out, m.demand_ejections);
  put_u64(out, m.predictable);
  put_u64(out, m.predictable_uncached);
  put_u64(out, m.lvc_opportunities);
  put_u64(out, m.lvc_followed);
  put_u64(out, m.lvc_checks);
  put_u64(out, m.lvc_cached);
  put_u64(out, m.tree_nodes);
  put_u64(out, m.tree_bytes);
}

std::optional<WireMetrics> parse_metrics(
    std::span<const std::uint8_t> payload) {
  Reader r(payload);
  WireMetrics m;
  m.accesses = r.read_u64();
  m.demand_hits = r.read_u64();
  m.prefetch_hits = r.read_u64();
  m.misses = r.read_u64();
  m.elapsed_ms = r.read_f64();
  m.stall_ms = r.read_f64();
  m.disk_queue_delay_ms = r.read_f64();
  m.disk_requests = r.read_u64();
  m.prefetches_issued = r.read_u64();
  m.obl_prefetches_issued = r.read_u64();
  m.tree_prefetches_issued = r.read_u64();
  m.sum_prefetch_probability = r.read_f64();
  m.candidates_chosen = r.read_u64();
  m.candidates_already_cached = r.read_u64();
  m.prefetch_ejections = r.read_u64();
  m.demand_ejections = r.read_u64();
  m.predictable = r.read_u64();
  m.predictable_uncached = r.read_u64();
  m.lvc_opportunities = r.read_u64();
  m.lvc_followed = r.read_u64();
  m.lvc_checks = r.read_u64();
  m.lvc_cached = r.read_u64();
  m.tree_nodes = r.read_u64();
  m.tree_bytes = r.read_u64();
  if (!r.exhausted()) {
    return std::nullopt;
  }
  return m;
}

void encode_batch_reply(std::vector<std::uint8_t>& out, const BatchReply& r) {
  put_u64(out, r.demand_hits);
  put_u64(out, r.prefetch_hits);
  put_u64(out, r.misses);
  put_f64(out, r.latency_ms);
}

std::optional<BatchReply> parse_batch_reply(
    std::span<const std::uint8_t> payload) {
  Reader r(payload);
  BatchReply reply;
  reply.demand_hits = r.read_u64();
  reply.prefetch_hits = r.read_u64();
  reply.misses = r.read_u64();
  reply.latency_ms = r.read_f64();
  if (!r.exhausted()) {
    return std::nullopt;
  }
  return reply;
}

void encode_error(std::vector<std::uint8_t>& out, const ErrorReply& e) {
  put_u16(out, static_cast<std::uint16_t>(e.code));
  put_string(out, e.detail);
}

std::optional<ErrorReply> parse_error(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ErrorReply e;
  e.code = static_cast<ErrorCode>(r.read_u16());
  e.detail = r.read_string();
  if (!r.exhausted()) {
    return std::nullopt;
  }
  return e;
}

}  // namespace pfp::server::wire
