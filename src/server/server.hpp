// The prefetch-as-a-service frontend: loopback TCP, N event-loop
// threads, multi-tenant PFP1 protocol plus a Prometheus /metrics page.
//
// Topology (docs/server.md): loop 0 owns the listener and hands accepted
// connections round-robin to all loops over mutex-guarded mailboxes
// (WakeFd interrupts the target's poll).  From then on a connection
// belongs to exactly one loop thread — its buffers and Session are
// single-threaded by construction, pinned by a util::ThreadRole
// capability that clang -Werror=thread-safety enforces.  Cross-tenant
// parallelism comes from connections landing on different loops;
// per-tenant ordering comes from the tenant mutex inside Session.
//
// Each connection speaks either PFP1 or HTTP, sniffed from the first
// four bytes ("GET " = HTTP): a Prometheus scraper can point at the same
// port the binary clients use.  The HTTP side serves exactly one
// request (/metrics or 404) and closes, HTTP/1.0 style.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/tenant_registry.hpp"
#include "server/session.hpp"
#include "util/net.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace pfp::server {

struct ServerConfig {
  /// Loopback TCP port; 0 = kernel-assigned (read it back via port()).
  std::uint16_t port = 0;
  /// Event-loop threads (thread-per-core shape; min 1).
  std::size_t loops = 1;
  SessionConfig session;
};

/// One accepted connection's state machine: protocol sniffing, the PFP1
/// session, and the one-shot HTTP buffers.  Owned by exactly one event
/// loop; never shared.
struct ServerConn {
  ServerConn(util::net::Socket socket, engine::TenantRegistry& registry,
             const SessionConfig& config)
      : sock(std::move(socket)), session(registry, config) {}

  util::net::Socket sock;
  Session session;
  std::vector<std::uint8_t> pre;       ///< bytes held until sniffing decides
  std::vector<std::uint8_t> http_in;   ///< HTTP request accumulator
  std::vector<std::uint8_t> http_out;  ///< HTTP response awaiting flush
  bool decided = false;  ///< protocol sniffed?
  bool http = false;     ///< HTTP (true) or PFP1 (false); valid if decided
  bool close_after_flush = false;
  bool dead = false;  ///< marked during an iteration, reaped after
};

/// One event loop's state.  `incoming` is the cross-thread mailbox; all
/// other fields belong to the loop thread (the `owner` role capability —
/// run_loop() asserts it once, every other toucher fails the clang
/// thread-safety build).
struct ServerLoop {
  util::net::WakeFd wake;
  util::Mutex mu;
  std::vector<util::net::Socket> incoming PFP_GUARDED_BY(mu);

  util::ThreadRole owner;  ///< the one thread running run_loop()
  std::vector<std::unique_ptr<ServerConn>> conns PFP_GUARDED_BY(owner);
  util::net::Poller poller PFP_GUARDED_BY(owner);
  std::vector<util::net::PollEntry> entries PFP_GUARDED_BY(owner);
  /// Round-robin cursor for handing accepted sockets out (loop 0 only).
  std::size_t next_loop PFP_GUARDED_BY(owner) = 0;

  /// Trust declaration: "this thread is the loop owner" (see
  /// util/thread_annotations.hpp; uniqueness itself is TSan's job).
  void assert_owner() const PFP_ASSERT_CAPABILITY(owner) {}
};

class PrefetchServer {
 public:
  /// Binds 127.0.0.1:port and starts the loops; throws
  /// std::runtime_error if the port cannot be bound.
  explicit PrefetchServer(ServerConfig config);
  ~PrefetchServer();

  PrefetchServer(const PrefetchServer&) = delete;
  PrefetchServer& operator=(const PrefetchServer&) = delete;

  /// The bound port (resolves port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// The tenant registry (tests pre-open tenants / inspect state).
  [[nodiscard]] engine::TenantRegistry& registry() noexcept {
    return registry_;
  }

  /// Stops accepting, drains the loops and joins them.  Idempotent;
  /// the destructor calls it.
  void stop();

  /// The multi-tenant Prometheus exposition (one labeled view per
  /// tenant).  The /metrics HTTP handler serves exactly this string, so
  /// tests can diff the two.  Safe from any thread.
  [[nodiscard]] std::string render_metrics() const;

 private:
  void run_loop(std::size_t index);
  /// Accepts the backlog and deals sockets round-robin (loop 0 only).
  void accept_pending(ServerLoop& loop) PFP_REQUIRES(loop.owner);
  /// Moves mailbox sockets into this loop's connection list.
  void adopt_incoming(ServerLoop& loop) PFP_REQUIRES(loop.owner);
  /// Drains readable bytes; false = drop the connection.
  [[nodiscard]] bool service_read(ServerConn& conn);
  /// Routes bytes through sniffing into the session or HTTP handler;
  /// false latches close_after_flush.
  [[nodiscard]] bool on_bytes(ServerConn& conn,
                              std::span<const std::uint8_t> bytes);
  [[nodiscard]] bool on_decided_bytes(ServerConn& conn,
                                      std::span<const std::uint8_t> bytes);
  /// Builds the one-shot HTTP response once a full request arrived.
  [[nodiscard]] bool service_http(ServerConn& conn);
  /// Flushes pending output; false = drop the connection.
  [[nodiscard]] bool flush_writes(ServerConn& conn);
  [[nodiscard]] std::size_t pending_out(const ServerConn& conn) const;
  [[nodiscard]] bool stopping() const;

  ServerConfig config_;
  engine::TenantRegistry registry_;
  util::net::Socket listener_;
  std::uint16_t port_ = 0;
  mutable util::Mutex state_mu_;
  bool stop_ PFP_GUARDED_BY(state_mu_) = false;
  std::vector<std::unique_ptr<ServerLoop>> loops_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<std::future<void>> loop_futures_;
};

}  // namespace pfp::server
