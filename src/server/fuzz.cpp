#include "server/fuzz.hpp"

#include <algorithm>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "engine/tenant_registry.hpp"
#include "server/session.hpp"
#include "server/wire.hpp"
#include "util/prng.hpp"

namespace pfp::server {

namespace {

/// The tenant id every case finds pre-opened (the "serving" tenant a
/// real server would have; mutated frames often still address it).
constexpr std::uint16_t kLiveTenant = 1;

/// Builds one well-formed frame of a random type with a plausible
/// payload.  Values are bounded so even successful TENANT_OPENs stay
/// cheap (the harness runs thousands of cases under ASan).
std::vector<std::uint8_t> valid_frame(util::Xoshiro256& rng) {
  std::vector<std::uint8_t> payload;
  wire::MsgType type = wire::MsgType::kPing;
  switch (rng.below(8)) {
    case 0:
      type = wire::MsgType::kPing;
      break;
    case 1:
      type = wire::MsgType::kStats;
      break;
    case 2:
      type = wire::MsgType::kTenantClose;
      break;
    case 3:
      type = wire::MsgType::kSnapshot;
      break;
    case 4:
      type = wire::MsgType::kAccess;
      wire::put_u64(payload, rng.next());
      break;
    case 5: {
      type = wire::MsgType::kAccessMany;
      const std::uint32_t count = static_cast<std::uint32_t>(rng.below(32));
      wire::put_u32(payload, count);
      for (std::uint32_t i = 0; i < count; ++i) {
        wire::put_u64(payload, rng.next());
      }
      break;
    }
    case 6: {
      type = wire::MsgType::kTenantOpen;
      wire::TenantOpenRequest request;
      request.name = "f";
      request.name += std::to_string(rng.below(16));
      // A mix of junk and (depending on the build's policy registry)
      // possibly-valid names; both outcomes are legal protocol.
      static constexpr const char* kNames[] = {"", "nope", "tree-paper",
                                               "markov", "no-prefetch"};
      request.policy = kNames[rng.below(5)];
      request.cache_blocks = rng.range(1, 2048);
      request.shards = static_cast<std::uint32_t>(rng.below(3));
      wire::encode_tenant_open(payload, request);
      break;
    }
    default: {
      type = wire::MsgType::kRestore;
      const std::uint64_t n = rng.below(64);
      for (std::uint64_t i = 0; i < n; ++i) {
        payload.push_back(static_cast<std::uint8_t>(rng.next() & 0xff));
      }
      break;
    }
  }
  wire::FrameHeader header;
  header.type = type;
  header.tenant = rng.bernoulli(0.5)
                      ? kLiveTenant
                      : static_cast<std::uint16_t>(rng.below(4));
  header.serial = static_cast<std::uint32_t>(rng.next());
  std::vector<std::uint8_t> frame;
  wire::append_frame(frame, header, payload);
  return frame;
}

/// One corpus entry: valid frames, then a seeded deformation.
std::vector<std::uint8_t> generate_case(util::Xoshiro256& rng,
                                        const FuzzOptions& options) {
  std::vector<std::uint8_t> bytes;
  switch (rng.below(8)) {
    case 0: {  // pure garbage
      const std::uint64_t n = rng.below(options.max_case_bytes) + 1;
      for (std::uint64_t i = 0; i < n; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(rng.next() & 0xff));
      }
      break;
    }
    case 1: {  // 1..4 valid frames back to back
      const std::uint64_t frames = rng.below(4) + 1;
      for (std::uint64_t i = 0; i < frames; ++i) {
        const std::vector<std::uint8_t> frame = valid_frame(rng);
        bytes.insert(bytes.end(), frame.begin(), frame.end());
      }
      break;
    }
    case 2: {  // truncated valid frame
      bytes = valid_frame(rng);
      bytes.resize(rng.below(bytes.size()));
      break;
    }
    case 3: {  // oversized declared length (connection-fatal)
      bytes = valid_frame(rng);
      const std::uint32_t huge =
          wire::kMaxPayload + 1 +
          static_cast<std::uint32_t>(rng.below(1u << 20));
      bytes[8] = static_cast<std::uint8_t>(huge & 0xff);
      bytes[9] = static_cast<std::uint8_t>((huge >> 8) & 0xff);
      bytes[10] = static_cast<std::uint8_t>((huge >> 16) & 0xff);
      bytes[11] = static_cast<std::uint8_t>((huge >> 24) & 0xff);
      break;
    }
    case 4: {  // bad magic or version (connection-fatal)
      bytes = valid_frame(rng);
      const std::uint64_t at = rng.below(4);
      bytes[at] = static_cast<std::uint8_t>(bytes[at] ^
                                            (1u << rng.below(8)));
      break;
    }
    case 5: {  // declared length disagrees with the payload bytes sent
      bytes = valid_frame(rng);
      const std::uint32_t claim =
          static_cast<std::uint32_t>(rng.below(4096));
      bytes[8] = static_cast<std::uint8_t>(claim & 0xff);
      bytes[9] = static_cast<std::uint8_t>((claim >> 8) & 0xff);
      bytes[10] = 0;
      bytes[11] = 0;
      break;
    }
    case 6: {  // random byte flips anywhere in a valid frame
      bytes = valid_frame(rng);
      const std::uint64_t flips = rng.below(8) + 1;
      for (std::uint64_t i = 0; i < flips; ++i) {
        const std::uint64_t at = rng.below(bytes.size());
        bytes[at] = static_cast<std::uint8_t>(rng.next() & 0xff);
      }
      break;
    }
    default: {  // splice: valid frame + garbage tail
      bytes = valid_frame(rng);
      const std::uint64_t n = rng.below(128);
      for (std::uint64_t i = 0; i < n; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(rng.next() & 0xff));
      }
      break;
    }
  }
  if (bytes.size() > options.max_case_bytes) {
    bytes.resize(options.max_case_bytes);
  }
  return bytes;
}

/// Counts complete reply frames in a session's out buffer; replies the
/// server emits must themselves decode cleanly.
std::uint64_t count_replies(std::span<const std::uint8_t> out,
                            bool* clean) {
  std::uint64_t frames = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const wire::DecodeResult result = wire::decode(out.subspan(pos));
    if (result.status != wire::DecodeStatus::kFrame) {
      *clean = false;
      return frames;
    }
    ++frames;
    pos += result.consumed;
  }
  *clean = true;
  return frames;
}

}  // namespace

FuzzReport run_protocol_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  util::Xoshiro256 rng(options.seed);
  SessionConfig session_config;
  // Bound what a successful (mutated) TENANT_OPEN can cost; a real
  // deployment bounds this too (docs/server.md, "Resource bounds").
  session_config.max_batch = 1u << 12;

  for (std::uint64_t c = 0; c < options.cases; ++c) {
    engine::TenantRegistry registry;
    engine::TenantConfig live;
    live.name = "fuzz-live";
    live.engine.cache_blocks = 64;
    (void)registry.open(kLiveTenant, std::move(live), nullptr);

    Session session(registry, session_config);
    const std::vector<std::uint8_t> bytes = generate_case(rng, options);
    report.bytes += bytes.size();

    // Feed in random chunks to exercise reassembly across ingest calls.
    std::size_t pos = 0;
    bool alive = true;
    while (pos < bytes.size() && alive) {
      const std::size_t chunk = static_cast<std::size_t>(
          rng.range(1, 64));
      const std::size_t n = std::min(chunk, bytes.size() - pos);
      alive = session.ingest(
          std::span<const std::uint8_t>(bytes).subspan(pos, n));
      pos += n;
    }

    // Contract: fatal() <=> ingest said stop; replies decode cleanly;
    // one reply per handled frame plus one kError for a fatal ending.
    if (session.fatal() == alive) {
      ++report.contract_violations;
    }
    bool clean = false;
    const std::uint64_t replies = count_replies(session.out(), &clean);
    const std::uint64_t expected =
        session.frames_handled() + (session.fatal() ? 1 : 0);
    if (!clean || replies != expected) {
      ++report.contract_violations;
    }
    if (session.fatal()) {
      ++report.fatal_sessions;
    }
    report.frames_handled += session.frames_handled();
    report.errors_sent += session.errors_sent();
    ++report.cases;
  }
  return report;
}

}  // namespace pfp::server
