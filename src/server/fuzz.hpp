// Deterministic protocol fuzzing for the PFP1 decoder and frame
// handlers.
//
// The corpus is generated, not collected: from one 64-bit seed the
// harness produces `cases` byte strings — valid frames, truncations,
// oversized lengths, garbage magic/version/type bytes, payload-length
// mismatches, random splices — and feeds each through a real Session
// over a real TenantRegistry, split at random ingest boundaries to
// exercise the reassembly path.  The production code path is the one
// under test (fuzz and server share Session verbatim); the harness only
// checks the protocol's total-error contract:
//
//   - no crash, no hang, no sanitizer report (the CI leg runs ASan);
//   - every handled frame produced a reply or a typed error;
//   - a fatal framing error latches the session (no frames after).
//
// Determinism makes the smoke leg meaningful in CI: same seed, same
// corpus, same verdict — a failure names the case index to replay.
#pragma once

#include <cstdint>

namespace pfp::server {

struct FuzzOptions {
  std::uint64_t seed = 0x5eed5eed5eed5eedULL;
  std::uint64_t cases = 2000;
  /// Max generated case length in bytes (before splicing).
  std::uint64_t max_case_bytes = 4096;
};

struct FuzzReport {
  std::uint64_t cases = 0;
  std::uint64_t bytes = 0;           ///< total corpus bytes ingested
  std::uint64_t frames_handled = 0;  ///< complete frames dispatched
  std::uint64_t errors_sent = 0;     ///< typed kError replies
  std::uint64_t fatal_sessions = 0;  ///< sessions latched fatal
  std::uint64_t contract_violations = 0;  ///< MUST stay 0
};

/// Runs the whole corpus; never throws on malformed input (a throw IS a
/// finding and escapes to the caller/test).
[[nodiscard]] FuzzReport run_protocol_fuzz(const FuzzOptions& options);

}  // namespace pfp::server
