// The prefetch-as-a-service binary wire protocol ("PFP1").
//
// Every message is one length-prefixed frame with a fixed 16-byte
// little-endian header:
//
//     offset  size  field
//     0       3     magic "PFP"
//     3       1     protocol version (currently 1)
//     4       1     message type (MsgType)
//     5       1     flags (reply: kFlagBackpressure, kFlagAsync)
//     6       2     tenant id (u16; client-chosen at TENANT_OPEN)
//     8       4     payload length (u32; 0..kMaxPayload)
//     12      4     serial (u32; echoed verbatim in the reply)
//
// followed by `payload length` bytes of type-specific payload.  All
// integers are little-endian; doubles travel as bit-cast u64 (the same
// dialect as util/binary_io.hpp, but over byte spans instead of
// iostreams so the decoder can run zero-copy inside the event loop).
//
// Error handling is typed and total: a malformed header (bad magic /
// version / oversized length) is connection-fatal — the server replies
// kError and closes, because the byte stream can no longer be re-synced.
// A well-framed but malformed request (unknown type, payload length
// mismatch, unopened tenant, ...) gets a kError reply naming the
// ErrorCode and the connection continues.  docs/server.md carries the
// full frame diagrams and the per-type payload tables.
//
// Layering: src/server/ may include engine/, obs/ and util/ only; this
// codec deliberately speaks raw u64 block ids so it depends on neither
// (enforced by scripts/lint/check_conventions.py).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pfp::server::wire {

inline constexpr std::size_t kHeaderSize = 16;
inline constexpr std::uint8_t kMagic[3] = {'P', 'F', 'P'};
inline constexpr std::uint8_t kVersion = 1;
/// Hard payload bound; a length above this can only be garbage (or an
/// attack) and is connection-fatal.  Snapshots of large tenants are the
/// biggest legitimate frames.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;

enum class MsgType : std::uint8_t {
  // Requests.
  kAccess = 0x01,      ///< u64 block
  kAccessMany = 0x02,  ///< u32 count + count x u64 blocks
  kStats = 0x03,       ///< (empty)
  kSnapshot = 0x04,    ///< (empty)
  kRestore = 0x05,     ///< PFEG blob
  kTenantOpen = 0x06,  ///< TenantOpenRequest
  kTenantClose = 0x07, ///< (empty)
  kPing = 0x08,        ///< (empty; liveness + RTT probe)
  // Replies (request type | 0x80).
  kAccessReply = 0x81,
  kAccessManyReply = 0x82,
  kStatsReply = 0x83,
  kSnapshotReply = 0x84,
  kRestoreReply = 0x85,
  kTenantOpenReply = 0x86,
  kTenantCloseReply = 0x87,
  kPingReply = 0x88,
  kError = 0xFF,  ///< u16 ErrorCode + u16 detail length + detail text
};

/// Reply-header flag bits.
inline constexpr std::uint8_t kFlagBackpressure = 0x01;
/// Set on ACCESS_MANY replies from sharded tenants: the batch was
/// accepted and routed, but per-batch hit/miss counts are not yet known
/// (the shard workers run asynchronously); the counts in the reply are
/// zero and STATS is the source of truth.
inline constexpr std::uint8_t kFlagAsync = 0x02;

enum class ErrorCode : std::uint16_t {
  kBadMagic = 1,       ///< connection-fatal
  kBadVersion = 2,     ///< connection-fatal
  kOversized = 3,      ///< connection-fatal (cannot re-sync the stream)
  kUnknownType = 4,
  kBadPayload = 5,     ///< length/content mismatch inside the payload
  kNoSuchTenant = 6,
  kTenantExists = 7,
  kBadConfig = 8,      ///< TENANT_OPEN rejected by engine::validate
  kBadSnapshot = 9,    ///< RESTORE blob rejected; tenant state unchanged
  kBackpressure = 10,  ///< batch exceeds max_batch; split and retry
  kUnsupported = 11,   ///< operation not available for this tenant kind
  kInternal = 12,
};

/// Stable name for an ErrorCode ("no-such-tenant", ...).
[[nodiscard]] std::string_view error_name(ErrorCode code);

struct FrameHeader {
  MsgType type = MsgType::kPing;
  std::uint8_t flags = 0;
  std::uint16_t tenant = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t serial = 0;
};

/// One decoded frame; `payload` views the caller's buffer and is only
/// valid until that buffer is mutated.
struct Frame {
  FrameHeader header;
  std::span<const std::uint8_t> payload;
};

enum class DecodeStatus {
  kNeedMore,  ///< the buffer holds a frame prefix; read more bytes
  kFrame,     ///< `frame` is valid, `consumed` bytes may be discarded
  kError,     ///< connection-fatal framing error (see `error`)
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Frame frame;
  std::size_t consumed = 0;
  ErrorCode error = ErrorCode::kInternal;
};

/// Attempts to decode one frame from the front of `buf`.  Never throws;
/// never reads past `buf`.  kError means the stream is unrecoverable
/// (bad magic/version or an implausible length) — the caller should send
/// a kError reply if it still can, then close.
[[nodiscard]] DecodeResult decode(std::span<const std::uint8_t> buf);

// --- encode side --------------------------------------------------------

/// Appends one complete frame (header + payload) to `out`.
void append_frame(std::vector<std::uint8_t>& out, const FrameHeader& header,
                  std::span<const std::uint8_t> payload);

/// Little-endian append helpers (the payload-building vocabulary).
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_f64(std::vector<std::uint8_t>& out, double v);

/// Bounds-checked little-endian cursor over a payload span.  All read_*
/// calls after an overrun return zeros and latch ok() == false, so
/// payload parsers can read field-by-field and check once at the end
/// (mirrors binary_io's garbage-on-truncation contract, but without
/// iostream state).
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint16_t read_u16();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] double read_f64();
  /// Reads `n` raw bytes; an empty span (with ok() latched false) on
  /// overrun.
  [[nodiscard]] std::span<const std::uint8_t> read_bytes(std::size_t n);
  /// u16 length-prefixed UTF-8 string.
  [[nodiscard]] std::string read_string();

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// True when every byte was consumed (parsers use this to reject
  /// trailing garbage).
  [[nodiscard]] bool exhausted() const noexcept {
    return ok_ && pos_ == data_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  [[nodiscard]] bool take(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// u16 length-prefixed string (TENANT_OPEN names, error details).
void put_string(std::vector<std::uint8_t>& out, std::string_view s);

// --- typed payloads -----------------------------------------------------

/// TENANT_OPEN request payload.
struct TenantOpenRequest {
  std::string name;        ///< metrics label; non-empty, <= 255 bytes
  std::string policy;      ///< core::policy kind name ("tree", "markov", ...)
  std::uint64_t cache_blocks = 1024;
  /// 0 or 1 = one PrefetchEngine; >= 2 = a ShardedEngine with this many
  /// shards (Routing::kRuns, so each shard sees contiguous stream runs).
  std::uint32_t shards = 0;
};

void encode_tenant_open(std::vector<std::uint8_t>& out,
                        const TenantOpenRequest& req);
[[nodiscard]] std::optional<TenantOpenRequest> parse_tenant_open(
    std::span<const std::uint8_t> payload);

/// STATS reply payload: the engine's full deterministic Metrics, every
/// field bit-exact, so a client can compare a served stream against an
/// in-process replay with EXPECT_EQ semantics (the server-integration CI
/// leg does exactly that).
struct WireMetrics {
  std::uint64_t accesses = 0;
  std::uint64_t demand_hits = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t misses = 0;
  double elapsed_ms = 0.0;
  double stall_ms = 0.0;
  double disk_queue_delay_ms = 0.0;
  std::uint64_t disk_requests = 0;
  // core::policy::PolicyMetrics, field for field.
  std::uint64_t prefetches_issued = 0;
  std::uint64_t obl_prefetches_issued = 0;
  std::uint64_t tree_prefetches_issued = 0;
  double sum_prefetch_probability = 0.0;
  std::uint64_t candidates_chosen = 0;
  std::uint64_t candidates_already_cached = 0;
  std::uint64_t prefetch_ejections = 0;
  std::uint64_t demand_ejections = 0;
  std::uint64_t predictable = 0;
  std::uint64_t predictable_uncached = 0;
  std::uint64_t lvc_opportunities = 0;
  std::uint64_t lvc_followed = 0;
  std::uint64_t lvc_checks = 0;
  std::uint64_t lvc_cached = 0;
  std::uint64_t tree_nodes = 0;
  std::uint64_t tree_bytes = 0;

  bool operator==(const WireMetrics&) const = default;
};

void encode_metrics(std::vector<std::uint8_t>& out, const WireMetrics& m);
[[nodiscard]] std::optional<WireMetrics> parse_metrics(
    std::span<const std::uint8_t> payload);

/// ACCESS_MANY reply payload.
struct BatchReply {
  std::uint64_t demand_hits = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t misses = 0;
  double latency_ms = 0.0;
};

void encode_batch_reply(std::vector<std::uint8_t>& out, const BatchReply& r);
[[nodiscard]] std::optional<BatchReply> parse_batch_reply(
    std::span<const std::uint8_t> payload);

/// kError payload.
struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string detail;
};

void encode_error(std::vector<std::uint8_t>& out, const ErrorReply& e);
[[nodiscard]] std::optional<ErrorReply> parse_error(
    std::span<const std::uint8_t> payload);

}  // namespace pfp::server::wire
