#include "server/server.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/prometheus.hpp"

namespace pfp::server {

namespace {

/// Bound on a buffered HTTP request; scrapers send a few hundred bytes.
constexpr std::size_t kMaxHttpRequest = 64u << 10;

/// Read chunk per read_some call.
constexpr std::size_t kReadChunk = 64u << 10;

void append_bytes(std::vector<std::uint8_t>& out, std::string_view text) {
  out.insert(out.end(),
             reinterpret_cast<const std::uint8_t*>(text.data()),
             reinterpret_cast<const std::uint8_t*>(text.data()) +
                 text.size());
}

/// "GET /metrics HTTP/1.1" -> "/metrics"; empty on anything malformed.
std::string_view request_target(std::string_view request_line) {
  const std::size_t method_end = request_line.find(' ');
  if (method_end == std::string_view::npos ||
      request_line.substr(0, method_end) != "GET") {
    return {};
  }
  const std::size_t target_begin = method_end + 1;
  const std::size_t target_end = request_line.find(' ', target_begin);
  if (target_end == std::string_view::npos) {
    return {};
  }
  return request_line.substr(target_begin, target_end - target_begin);
}

}  // namespace

PrefetchServer::PrefetchServer(ServerConfig config)
    : config_(std::move(config)) {
  listener_ = util::net::listen_tcp(config_.port);
  port_ = util::net::local_port(listener_);
  const std::size_t loops = std::max<std::size_t>(std::size_t{1},
                                                  config_.loops);
  loops_.reserve(loops);
  for (std::size_t i = 0; i < loops; ++i) {
    loops_.push_back(std::make_unique<ServerLoop>());
  }
  pool_ = std::make_unique<util::ThreadPool>(loops);
  loop_futures_.reserve(loops);
  for (std::size_t i = 0; i < loops; ++i) {
    loop_futures_.push_back(pool_->submit([this, i] { run_loop(i); }));
  }
}

PrefetchServer::~PrefetchServer() { stop(); }

void PrefetchServer::stop() {
  {
    util::MutexLock lock(state_mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  for (const std::unique_ptr<ServerLoop>& loop : loops_) {
    loop->wake.wake();
  }
  for (std::future<void>& future : loop_futures_) {
    if (future.valid()) {
      future.get();
    }
  }
}

bool PrefetchServer::stopping() const {
  util::MutexLock lock(state_mu_);
  return stop_;
}

std::string PrefetchServer::render_metrics() const {
  std::vector<obs::LabeledStats> views;
  for (const auto& [id, tenant] : registry_.tenants()) {
    obs::LabeledStats view;
    view.labels.push_back(obs::Label{"tenant", tenant->name()});
    view.labels.push_back(obs::Label{"tenant_id", std::to_string(id)});
    view.stats = tenant->stats();
    views.push_back(std::move(view));
  }
  std::ostringstream out;
  render_prometheus(out, std::span<const obs::LabeledStats>(views));
  return std::move(out).str();
}

void PrefetchServer::run_loop(const std::size_t index) {
  ServerLoop& loop = *loops_[index];
  loop.assert_owner();
  const bool acceptor = index == 0;
  while (!stopping()) {
    // Rebuild the interest list: wake pipe, listener (loop 0), conns.
    loop.entries.clear();
    util::net::PollEntry wake_entry;
    wake_entry.fd = loop.wake.read_fd();
    wake_entry.want_read = true;
    loop.entries.push_back(wake_entry);
    if (acceptor) {
      util::net::PollEntry listen_entry;
      listen_entry.fd = listener_.fd();
      listen_entry.want_read = true;
      loop.entries.push_back(listen_entry);
    }
    const std::size_t conns_at = loop.entries.size();
    const std::size_t polled_conns = loop.conns.size();
    for (const std::unique_ptr<ServerConn>& conn : loop.conns) {
      util::net::PollEntry entry;
      entry.fd = conn->sock.fd();
      entry.want_read = !conn->close_after_flush;
      entry.want_write = pending_out(*conn) > 0;
      loop.entries.push_back(entry);
    }

    loop.poller.wait(loop.entries, -1);

    if (loop.entries[0].ready.readable) {
      loop.wake.drain();
    }
    if (acceptor && loop.entries[1].ready.readable) {
      accept_pending(loop);
    }
    adopt_incoming(loop);

    // Accepts/adoptions above appended NEW conns with no poll entry this
    // round; only the first `polled_conns` have readiness to act on.
    for (std::size_t i = 0; i < polled_conns; ++i) {
      ServerConn& conn = *loop.conns[i];
      const util::net::Readiness ready = loop.entries[conns_at + i].ready;
      bool alive = !ready.error;
      if (alive && ready.readable) {
        alive = service_read(conn);
      }
      if (alive) {
        // Flush opportunistically after reads too: the common case is a
        // reply that fits the socket buffer in one go.
        alive = flush_writes(conn);
      }
      conn.dead = !alive;
    }
    std::erase_if(loop.conns, [](const std::unique_ptr<ServerConn>& conn) {
      return conn->dead;
    });
  }
  loop.conns.clear();
}

void PrefetchServer::accept_pending(ServerLoop& loop) {
  for (;;) {
    util::net::Socket accepted = util::net::accept_one(listener_);
    if (!accepted.valid()) {
      break;
    }
    const std::size_t target = loop.next_loop % loops_.size();
    loop.next_loop++;
    if (target == 0) {
      loop.conns.push_back(std::make_unique<ServerConn>(
          std::move(accepted), registry_, config_.session));
      continue;
    }
    ServerLoop& other = *loops_[target];
    {
      util::MutexLock lock(other.mu);
      other.incoming.push_back(std::move(accepted));
    }
    other.wake.wake();
  }
}

void PrefetchServer::adopt_incoming(ServerLoop& loop) {
  std::vector<util::net::Socket> pending;
  {
    util::MutexLock lock(loop.mu);
    pending.swap(loop.incoming);
  }
  for (util::net::Socket& socket : pending) {
    loop.conns.push_back(std::make_unique<ServerConn>(
        std::move(socket), registry_, config_.session));
  }
}

bool PrefetchServer::service_read(ServerConn& conn) {
  std::array<std::uint8_t, kReadChunk> buf;
  for (;;) {
    const util::net::IoResult r = util::net::read_some(conn.sock, buf);
    if (r.status == util::net::IoStatus::kWouldBlock) {
      return true;
    }
    if (r.status != util::net::IoStatus::kOk) {
      // Orderly close or reset; replies the peer will never read are
      // dropped with the connection.
      return false;
    }
    if (!on_bytes(conn, std::span<const std::uint8_t>(buf.data(),
                                                      r.bytes))) {
      conn.close_after_flush = true;
      return true;
    }
  }
}

bool PrefetchServer::on_bytes(ServerConn& conn,
                              std::span<const std::uint8_t> bytes) {
  if (!conn.decided) {
    conn.pre.insert(conn.pre.end(), bytes.begin(), bytes.end());
    if (conn.pre.size() < 4) {
      return true;
    }
    conn.decided = true;
    conn.http = std::memcmp(conn.pre.data(), "GET ", 4) == 0;
    const std::vector<std::uint8_t> sniffed = std::move(conn.pre);
    conn.pre.clear();
    return on_decided_bytes(conn, sniffed);
  }
  return on_decided_bytes(conn, bytes);
}

bool PrefetchServer::on_decided_bytes(ServerConn& conn,
                                      std::span<const std::uint8_t> bytes) {
  if (!conn.http) {
    return conn.session.ingest(bytes);
  }
  conn.http_in.insert(conn.http_in.end(), bytes.begin(), bytes.end());
  if (conn.http_in.size() > kMaxHttpRequest) {
    return false;
  }
  return service_http(conn);
}

bool PrefetchServer::service_http(ServerConn& conn) {
  const std::string_view request(
      reinterpret_cast<const char*>(conn.http_in.data()),
      conn.http_in.size());
  if (request.find("\r\n\r\n") == std::string_view::npos) {
    return true;  // headers still incomplete
  }
  const std::string_view target =
      request_target(request.substr(0, request.find("\r\n")));
  std::string body;
  std::string status;
  if (target == "/metrics") {
    status = "200 OK";
    body = render_metrics();
  } else {
    status = "404 Not Found";
    body = "only /metrics lives here\n";
  }
  std::ostringstream head;
  head << "HTTP/1.1 " << status << "\r\n"
       << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n";
  append_bytes(conn.http_out, head.str());
  append_bytes(conn.http_out, body);
  return false;  // one-shot: flush then close
}

bool PrefetchServer::flush_writes(ServerConn& conn) {
  for (;;) {
    const std::span<const std::uint8_t> buf =
        conn.http ? std::span<const std::uint8_t>(conn.http_out)
                  : std::span<const std::uint8_t>(conn.session.out());
    if (buf.empty()) {
      break;
    }
    const util::net::IoResult r = util::net::write_some(conn.sock, buf);
    if (r.status == util::net::IoStatus::kWouldBlock) {
      break;
    }
    if (r.status != util::net::IoStatus::kOk) {
      return false;
    }
    if (conn.http) {
      conn.http_out.erase(conn.http_out.begin(),
                          conn.http_out.begin() +
                              static_cast<std::ptrdiff_t>(r.bytes));
    } else {
      conn.session.consumed(r.bytes);
    }
  }
  return !(conn.close_after_flush && pending_out(conn) == 0);
}

std::size_t PrefetchServer::pending_out(const ServerConn& conn) const {
  return conn.http ? conn.http_out.size() : conn.session.out().size();
}

}  // namespace pfp::server
