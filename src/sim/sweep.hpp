// Threaded sweep driver.
//
// Every simulation run is independent, so sweeps fan out over a thread
// pool — result order matches spec order regardless of completion order.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/experiment.hpp"

namespace pfp::sim {

/// Runs all specs on `threads` workers (0 = hardware concurrency).
/// Exceptions from individual runs propagate to the caller.
std::vector<Result> run_parallel(const std::vector<RunSpec>& specs,
                                 std::size_t threads = 0);

}  // namespace pfp::sim
