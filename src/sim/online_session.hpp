// Online (push-style) prefetching session.
//
// The Simulator consumes a whole recorded trace; OnlineSession exposes
// the same machinery one access at a time, so the library can be embedded
// in a host system or another simulator that discovers its reference
// stream as it runs:
//
//   sim::OnlineSession session(config);
//   for (;;) {
//     const auto r = session.access(next_block());
//     if (r.outcome == sim::OnlineSession::Outcome::kMiss) { ... }
//   }
//
// Oracle policies (perfect-selector) cannot run online — they need the
// future — and are rejected at construction.
#pragma once

#include <memory>

#include "sim/simulator.hpp"

namespace pfp::sim {

class OnlineSession {
 public:
  enum class Outcome { kDemandHit, kPrefetchHit, kMiss };

  struct AccessResult {
    Outcome outcome = Outcome::kMiss;
    /// Simulated latency of this access under the timing model (ms):
    /// T_hit for hits, plus residual prefetch stall or the full
    /// driver+disk penalty for misses.  Excludes T_cpu (the caller's
    /// compute is theirs).
    double latency_ms = 0.0;
  };

  /// Rejects PolicyKind::kPerfectSelector (requires future knowledge).
  explicit OnlineSession(SimConfig config);
  ~OnlineSession();

  OnlineSession(OnlineSession&&) noexcept;
  OnlineSession& operator=(OnlineSession&&) noexcept;

  /// Feeds one block reference; updates caches, predictor and prefetches.
  AccessResult access(trace::BlockId block);

  /// Metrics accumulated so far (misses, prefetch hit rate, ...).
  [[nodiscard]] const Metrics& metrics() const;

  /// The cache state, for introspection.
  [[nodiscard]] const cache::BufferCache& buffer_cache() const;

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  SimConfig config_;
  std::unique_ptr<Simulator> simulator_;
  trace::Trace window_;  ///< single-record scratch trace fed to step()
};

}  // namespace pfp::sim
