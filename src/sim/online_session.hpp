// Online (push-style) prefetching session.
//
// The Simulator consumes a whole recorded trace; OnlineSession exposes
// the same machinery one access at a time, so the library can be embedded
// in a host system or another simulator that discovers its reference
// stream as it runs:
//
//   sim::OnlineSession session(config);
//   for (;;) {
//     const auto r = session.access(next_block());
//     if (r.outcome == sim::OnlineSession::Outcome::kMiss) { ... }
//   }
//
// This is a thin shell over engine::PrefetchEngine::access(); it adds
// only the online-suitability check.  Oracle policies (perfect-selector)
// cannot run online — they need the future — and are rejected at
// construction.
#pragma once

#include <memory>

#include "engine/prefetch_engine.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace pfp::sim {

class OnlineSession {
 public:
  using Outcome = engine::Outcome;
  using AccessResult = engine::AccessResult;

  /// Rejects PolicyKind::kPerfectSelector (requires future knowledge).
  explicit OnlineSession(SimConfig config);
  ~OnlineSession();

  OnlineSession(OnlineSession&&) noexcept;
  OnlineSession& operator=(OnlineSession&& other) noexcept;

  /// Feeds one block reference; updates caches, predictor and prefetches.
  AccessResult access(trace::BlockId block);

  /// Metrics accumulated so far (misses, prefetch hit rate, ...).
  [[nodiscard]] const Metrics& metrics() const;

  /// The cache state, for introspection.
  [[nodiscard]] const cache::BufferCache& buffer_cache() const;

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  SimConfig config_;
  std::unique_ptr<engine::PrefetchEngine> engine_;
};

}  // namespace pfp::sim
