#include "sim/report.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>

#include "util/csv.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace pfp::sim {

void print_series_by_cache_size(std::ostream& out,
                                const std::vector<Result>& results,
                                const MetricFn& metric,
                                const std::string& metric_name,
                                bool percent) {
  // Preserve first-seen order of traces and policies.
  std::vector<std::string> traces;
  std::vector<std::string> policies;
  for (const auto& r : results) {
    if (std::find(traces.begin(), traces.end(), r.trace_name) ==
        traces.end()) {
      traces.push_back(r.trace_name);
    }
    if (std::find(policies.begin(), policies.end(), r.policy_name) ==
        policies.end()) {
      policies.push_back(r.policy_name);
    }
  }

  for (const auto& trace_name : traces) {
    // (cache size, policy) -> metric
    std::map<std::size_t, std::map<std::string, double>> cells;
    for (const auto& r : results) {
      if (r.trace_name == trace_name) {
        cells[r.config.cache_blocks][r.policy_name] = metric(r);
      }
    }
    out << "\n== " << trace_name << " — " << metric_name << " ==\n";
    std::vector<std::string> header = {"cache(blocks)"};
    header.insert(header.end(), policies.begin(), policies.end());
    util::TextTable table(header);
    for (const auto& [blocks, row] : cells) {
      std::vector<std::string> fields = {std::to_string(blocks)};
      for (const auto& policy : policies) {
        const auto it = row.find(policy);
        if (it == row.end()) {
          fields.emplace_back("-");
        } else if (percent) {
          fields.push_back(util::format_percent(it->second));
        } else {
          fields.push_back(util::format_double(it->second, 3));
        }
      }
      table.row(std::move(fields));
    }
    table.print(out);
  }
}

void write_results_csv(std::ostream& out,
                       const std::vector<Result>& results) {
  util::CsvWriter csv(
      out, {"trace", "policy", "cache_blocks", "t_cpu_ms", "accesses",
            "misses", "miss_rate", "demand_hits", "prefetch_hits",
            "prefetches_issued", "prefetches_per_access",
            "prefetch_cache_hit_rate", "mean_prefetch_probability",
            "candidates_cached_fraction", "prediction_accuracy",
            "predictable_uncached_fraction", "lvc_revisit_rate",
            "lvc_cached_fraction", "tree_nodes", "elapsed_ms", "stall_ms"});
  for (const auto& r : results) {
    const auto& m = r.metrics;
    csv.row()
        .add(r.trace_name)
        .add(r.policy_name)
        .add(static_cast<std::uint64_t>(r.config.cache_blocks))
        .add(r.config.timing.t_cpu)
        .add(m.accesses)
        .add(m.misses)
        .add(m.miss_rate())
        .add(m.demand_hits)
        .add(m.prefetch_hits)
        .add(m.policy.prefetches_issued)
        .add(m.prefetches_per_access())
        .add(m.prefetch_cache_hit_rate())
        .add(m.mean_prefetch_probability())
        .add(m.candidates_cached_fraction())
        .add(m.prediction_accuracy())
        .add(m.predictable_uncached_fraction())
        .add(m.lvc_revisit_rate())
        .add(m.lvc_cached_fraction())
        .add(m.policy.tree_nodes)
        .add(m.elapsed_ms)
        .add(m.stall_ms)
        .done();
  }
}

bool maybe_write_csv(const std::string& path,
                     const std::vector<Result>& results) {
  if (path.empty()) {
    return false;
  }
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  write_results_csv(out, results);
  return true;
}

}  // namespace pfp::sim
