// Compatibility shim: Metrics moved to the engine layer (the engine
// accumulates them; sim drivers only read them).  Kept so the large body
// of sim::Metrics users — benches, reports, tests — compiles unchanged.
#pragma once

#include "engine/metrics.hpp"

namespace pfp::sim {

using Metrics = engine::Metrics;

}  // namespace pfp::sim
