// Result formatting shared by the bench binaries.
//
// Each bench prints paper-style series: one table per trace with cache
// size (or another x parameter) as rows and one column per policy, plus
// an optional full CSV dump for offline plotting.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace pfp::sim {

using MetricFn = std::function<double(const Result&)>;

/// Groups `results` by trace name and prints, per trace, a table with one
/// row per cache size and one column per policy.  `percent` renders the
/// metric as a percentage.
void print_series_by_cache_size(std::ostream& out,
                                const std::vector<Result>& results,
                                const MetricFn& metric,
                                const std::string& metric_name, bool percent);

/// Full per-run CSV (one row per result) with every derived metric.
void write_results_csv(std::ostream& out, const std::vector<Result>& results);

/// Writes write_results_csv output to `path` unless path is empty.
/// Returns true if a file was written.
bool maybe_write_csv(const std::string& path,
                     const std::vector<Result>& results);

}  // namespace pfp::sim
