// Experiment runner: the cache-size / parameter sweeps behind every
// figure and table in Section 9, shared by the bench binaries.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "trace/workloads.hpp"

namespace pfp::sim {

/// The cache sizes (in blocks) the figures sweep.  The paper plots
/// roughly 128..16K; this is the default x-axis for all "vs cache size"
/// exhibits.
const std::vector<std::size_t>& default_cache_sizes();

/// One simulation request; Sweep runs batches of these.
struct RunSpec {
  const trace::Trace* trace = nullptr;  ///< non-owning; outlives the run
  SimConfig config;
};

/// Runs specs sequentially (see sweep.hpp for the threaded variant).
std::vector<Result> run_serial(const std::vector<RunSpec>& specs);

/// Builds the full (cache size x policy) grid for one trace.
std::vector<RunSpec> grid(const trace::Trace& trace,
                          const std::vector<std::size_t>& cache_sizes,
                          const std::vector<core::policy::PolicySpec>& specs,
                          const core::costben::TimingParams& timing = {});

/// Standard trace lengths for the paper-reproduction benches, scaled from
/// the originals (Table 1) to keep single-core runtimes reasonable while
/// preserving each trace's structure.  Override with --refs in benches.
std::uint64_t default_references(trace::Workload workload);

}  // namespace pfp::sim
