// The trace-driven simulator (Section 8).
//
// Thin replay driver over engine::PrefetchEngine: the per-access state
// machine (cache lookup -> predictor update -> candidate enumeration ->
// cost-benefit decision -> prefetch issue -> eviction) and the Section 3
// timing charges live in the engine; this class just feeds it a recorded
// trace and assembles a Result.
#pragma once

#include <string>

#include "engine/prefetch_engine.hpp"
#include "sim/metrics.hpp"
#include "trace/trace.hpp"

namespace pfp::sim {

/// The simulator's configuration is exactly the engine's; kept under the
/// historical name so existing experiment/test code compiles unchanged.
using SimConfig = engine::EngineConfig;

struct Result {
  SimConfig config;
  std::string policy_name;
  std::string trace_name;
  Metrics metrics;
};

class Simulator {
 public:
  explicit Simulator(SimConfig config) : engine_(config) {}

  /// Runs the whole trace; the simulator is single-use.
  Result run(const trace::Trace& trace);

  /// Access to live state mid-run (tests drive step() directly).
  void step(const trace::Trace& trace, std::size_t index) {
    engine_.step(trace, index);
  }
  [[nodiscard]] const cache::BufferCache& buffer_cache() const {
    return engine_.buffer_cache();
  }
  [[nodiscard]] const Metrics& metrics() const { return engine_.metrics(); }
  [[nodiscard]] const core::policy::Prefetcher& prefetcher() const {
    return engine_.prefetcher();
  }

  /// The underlying engine, for hosts that outgrow the replay API.
  [[nodiscard]] engine::PrefetchEngine& engine() noexcept { return engine_; }
  [[nodiscard]] const engine::PrefetchEngine& engine() const noexcept {
    return engine_;
  }

 private:
  engine::PrefetchEngine engine_;
};

/// Convenience: build and run in one call.
Result simulate(const SimConfig& config, const trace::Trace& trace);

}  // namespace pfp::sim
