// The trace-driven simulator (Section 8).
//
// Drives a reference stream through the partitioned buffer cache under a
// prefetching policy, charging the Section 3 timing model: every access
// period costs T_hit + T_cpu plus T_driver per fetch initiated, and
// stalls T_disk on a demand miss or the residual disk time on a prefetch
// that had not finished by the time its block was referenced.
#pragma once

#include <memory>

#include "cache/buffer_cache.hpp"
#include "cache/disk_model.hpp"
#include "cache/stack_distance.hpp"
#include "core/costben/estimator.hpp"
#include "core/costben/timing_model.hpp"
#include "core/policy/factory.hpp"
#include "sim/metrics.hpp"
#include "trace/trace.hpp"

namespace pfp::sim {

struct SimConfig {
  std::size_t cache_blocks = 1024;  ///< combined demand+prefetch capacity
  /// Number of disks in the array; 0 = the paper's infinite-disk
  /// assumption (every request completes in exactly T_disk).
  std::uint32_t disks = 0;
  core::costben::TimingParams timing;
  core::policy::PolicySpec policy;
};

struct Result {
  SimConfig config;
  std::string policy_name;
  std::string trace_name;
  Metrics metrics;
};

class Simulator {
 public:
  explicit Simulator(SimConfig config);

  /// Runs the whole trace; the simulator is single-use.
  Result run(const trace::Trace& trace);

  /// Access to live state mid-run (tests drive step() directly).
  void step(const trace::Trace& trace, std::size_t index);
  [[nodiscard]] const cache::BufferCache& buffer_cache() const { return cache_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] const core::policy::Prefetcher& prefetcher() const { return *policy_; }

 private:
  // The per-access pipeline is shared verbatim between the test-facing
  // virtual path (step()) and the devirtualized per-policy loops run()
  // dispatches to, so the two can never drift apart.  `PolicyRef` is a
  // dispatch proxy: Virtual goes through the vtable, Direct<P> makes
  // qualified calls on the exact dynamic type the factory guarantees.
  template <typename PolicyRef>
  void step_impl(PolicyRef policy, const trace::Trace& trace,
                 std::size_t index, core::policy::Context& ctx);
  template <typename PolicyRef>
  void run_loop(PolicyRef policy, const trace::Trace& trace);
  template <typename PolicyT>
  void run_as(const trace::Trace& trace);
  void dispatch_run(const trace::Trace& trace);

  SimConfig config_;
  cache::BufferCache cache_;
  cache::DiskArray disks_;
  cache::StackDistanceEstimator stack_;
  core::costben::Estimators estimators_;
  std::unique_ptr<core::policy::Prefetcher> policy_;
  Metrics metrics_;
};

/// Convenience: build and run in one call.
Result simulate(const SimConfig& config, const trace::Trace& trace);

}  // namespace pfp::sim
