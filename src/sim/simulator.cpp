#include "sim/simulator.hpp"

#include <algorithm>
#include <typeinfo>

#include "core/policy/next_limit.hpp"
#include "core/policy/no_prefetch.hpp"
#include "core/policy/perfect_selector.hpp"
#include "core/policy/tree_children.hpp"
#include "core/policy/tree_lvc.hpp"
#include "core/policy/tree_next_limit.hpp"
#include "core/policy/tree_threshold.hpp"
#include "util/assert.hpp"

namespace pfp::sim {

using core::policy::AccessOutcome;
using core::policy::Context;

namespace {

// Qualified-call proxy for the devirtualized run() loops: `P` is the
// exact dynamic type (asserted at dispatch), so P::member calls skip the
// vtable and can inline.  Works for non-final policies too — kTree maps
// to a TreeCostBenefit object even though subclasses of it exist.
template <typename P>
struct Direct {
  P& p;
  void on_access(trace::BlockId block, AccessOutcome outcome, Context& ctx) {
    p.P::on_access(block, outcome, ctx);
  }
  void reclaim_for_demand(Context& ctx) { p.P::reclaim_for_demand(ctx); }
  void on_prefetch_consumed(const cache::PrefetchEntry& entry, Context& ctx) {
    p.P::on_prefetch_consumed(entry, ctx);
  }
};

// Vtable proxy: the test-facing step() path and the fallback for policy
// kinds without a dedicated loop.
struct Virtual {
  core::policy::Prefetcher& p;
  void on_access(trace::BlockId block, AccessOutcome outcome, Context& ctx) {
    p.on_access(block, outcome, ctx);
  }
  void reclaim_for_demand(Context& ctx) { p.reclaim_for_demand(ctx); }
  void on_prefetch_consumed(const cache::PrefetchEntry& entry, Context& ctx) {
    p.on_prefetch_consumed(entry, ctx);
  }
};

}  // namespace

Simulator::Simulator(SimConfig config)
    : config_(config),
      cache_(config.cache_blocks),
      disks_(cache::DiskConfig{config.disks, config.timing.t_disk}),
      policy_(core::policy::make_prefetcher(config.policy)) {}

template <typename PolicyRef>
void Simulator::step_impl(PolicyRef policy, const trace::Trace& trace,
                          std::size_t index, Context& ctx) {
  const trace::BlockId block = trace[index].block;
  const double period_start = metrics_.elapsed_ms;
  ctx.period = index;
  ctx.now_ms = period_start;
  ctx.upcoming = trace.records().subspan(index + 1);

  const auto result = cache_.access(block);
  ++metrics_.accesses;

  // Every access period: read the block from the cache and compute.
  metrics_.elapsed_ms += config_.timing.t_hit + config_.timing.t_cpu;

  AccessOutcome outcome;
  if (const auto* hit = std::get_if<cache::DemandHit>(&result)) {
    outcome = AccessOutcome::kDemandHit;
    ++metrics_.demand_hits;
    stack_.record(/*hit=*/true, hit->stack_depth);
  } else if (const auto* pf = std::get_if<cache::PrefetchHit>(&result)) {
    outcome = AccessOutcome::kPrefetchHit;
    ++metrics_.prefetch_hits;
    stack_.record(/*hit=*/false);
    // Residual stall: the prefetch's disk read may not have completed by
    // the time its block is referenced (Figure 5's partial overlap).
    const double stall =
        std::max(pf->entry.completion_ms - period_start, 0.0);
    metrics_.elapsed_ms += stall;
    metrics_.stall_ms += stall;
    policy.on_prefetch_consumed(pf->entry, ctx);
  } else {
    outcome = AccessOutcome::kMiss;
    ++metrics_.misses;
    stack_.record(/*hit=*/false);
    metrics_.elapsed_ms += config_.timing.t_driver;
    const double completion = disks_.submit(block, metrics_.elapsed_ms);
    const double stall = completion - metrics_.elapsed_ms;
    metrics_.elapsed_ms = completion;
    metrics_.stall_ms += stall;
    if (cache_.free_buffers() == 0) {
      policy.reclaim_for_demand(ctx);
      PFP_REQUIRE(cache_.free_buffers() >= 1);
    }
    cache_.admit_demand(block);
  }

  // Policy turn: learn from the access, then issue this period's
  // prefetches; each costs T_driver of CPU time (Figure 3b).
  const std::uint64_t issued_before = metrics_.policy.prefetches_issued;
  policy.on_access(block, outcome, ctx);
  const std::uint64_t issued =
      metrics_.policy.prefetches_issued - issued_before;
  metrics_.elapsed_ms +=
      static_cast<double>(issued) * config_.timing.t_driver;

  // Keep the disk aggregates current so online (push-style) users see
  // fresh metrics without a run() epilogue.
  metrics_.disk_queue_delay_ms = disks_.queue_delay_ms();
  metrics_.disk_requests = disks_.requests();

  PFP_DASSERT(cache_.resident() <= cache_.total_blocks());
}

void Simulator::step(const trace::Trace& trace, std::size_t index) {
  Context ctx{cache_,      disks_, config_.timing, estimators_,
              stack_,      metrics_.policy};
  step_impl(Virtual{*policy_}, trace, index, ctx);
}

template <typename PolicyRef>
void Simulator::run_loop(PolicyRef policy, const trace::Trace& trace) {
  // One Context for the whole run; step_impl refreshes the per-period
  // fields (period, now_ms, upcoming) instead of rebuilding the struct
  // of references every access.
  Context ctx{cache_,      disks_, config_.timing, estimators_,
              stack_,      metrics_.policy};
  for (std::size_t i = 0; i < trace.size(); ++i) {
    step_impl(policy, trace, i, ctx);
  }
}

template <typename PolicyT>
void Simulator::run_as(const trace::Trace& trace) {
  PFP_DASSERT(typeid(*policy_) == typeid(PolicyT));
  run_loop(Direct<PolicyT>{static_cast<PolicyT&>(*policy_)}, trace);
}

void Simulator::dispatch_run(const trace::Trace& trace) {
  using core::policy::PolicyKind;
  // The factory maps each kind to exactly one concrete class (asserted in
  // run_as under debug), which is what makes the qualified-call loops
  // semantically identical to the virtual path.
  switch (config_.policy.kind) {
    case PolicyKind::kNoPrefetch:
      run_as<core::policy::NoPrefetch>(trace);
      return;
    case PolicyKind::kNextLimit:
      run_as<core::policy::NextLimit>(trace);
      return;
    case PolicyKind::kTree:
      run_as<core::policy::TreeCostBenefit>(trace);
      return;
    case PolicyKind::kTreeNextLimit:
      run_as<core::policy::TreeNextLimit>(trace);
      return;
    case PolicyKind::kTreeLvc:
      run_as<core::policy::TreeLvc>(trace);
      return;
    case PolicyKind::kPerfectSelector:
      run_as<core::policy::PerfectSelector>(trace);
      return;
    case PolicyKind::kTreeThreshold:
      run_as<core::policy::TreeThreshold>(trace);
      return;
    case PolicyKind::kTreeChildren:
      run_as<core::policy::TreeChildren>(trace);
      return;
    case PolicyKind::kProbGraph:
      run_as<core::policy::ProbGraph>(trace);
      return;
    case PolicyKind::kTreeAdaptive:
      run_as<core::policy::TreeAdaptive>(trace);
      return;
  }
  run_loop(Virtual{*policy_}, trace);  // unknown kind: vtable fallback
}

Result Simulator::run(const trace::Trace& trace) {
  dispatch_run(trace);
  Result result;
  result.config = config_;
  result.policy_name = policy_->name();
  result.trace_name = trace.name();
  result.metrics = metrics_;
  return result;
}

Result simulate(const SimConfig& config, const trace::Trace& trace) {
  Simulator simulator(config);
  return simulator.run(trace);
}

}  // namespace pfp::sim
