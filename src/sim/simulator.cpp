#include "sim/simulator.hpp"

namespace pfp::sim {

Result Simulator::run(const trace::Trace& trace) {
  engine_.run_trace(trace);
  Result result;
  result.config = engine_.config();
  result.policy_name = engine_.prefetcher().name();
  result.trace_name = trace.name();
  result.metrics = engine_.metrics();
  return result;
}

Result simulate(const SimConfig& config, const trace::Trace& trace) {
  Simulator simulator(config);
  return simulator.run(trace);
}

}  // namespace pfp::sim
