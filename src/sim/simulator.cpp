#include "sim/simulator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pfp::sim {

using core::policy::AccessOutcome;
using core::policy::Context;

Simulator::Simulator(SimConfig config)
    : config_(config),
      cache_(config.cache_blocks),
      disks_(cache::DiskConfig{config.disks, config.timing.t_disk}),
      policy_(core::policy::make_prefetcher(config.policy)) {}

void Simulator::step(const trace::Trace& trace, std::size_t index) {
  const trace::BlockId block = trace[index].block;
  const double period_start = metrics_.elapsed_ms;
  Context ctx{cache_,   disks_,          config_.timing,
              estimators_, stack_,       metrics_.policy,
              /*period=*/index,          /*now_ms=*/period_start,
              trace.records().subspan(index + 1)};

  const auto result = cache_.access(block);
  ++metrics_.accesses;

  // Every access period: read the block from the cache and compute.
  metrics_.elapsed_ms += config_.timing.t_hit + config_.timing.t_cpu;

  AccessOutcome outcome;
  if (const auto* hit = std::get_if<cache::DemandHit>(&result)) {
    outcome = AccessOutcome::kDemandHit;
    ++metrics_.demand_hits;
    stack_.record(/*hit=*/true, hit->stack_depth);
  } else if (const auto* pf = std::get_if<cache::PrefetchHit>(&result)) {
    outcome = AccessOutcome::kPrefetchHit;
    ++metrics_.prefetch_hits;
    stack_.record(/*hit=*/false);
    // Residual stall: the prefetch's disk read may not have completed by
    // the time its block is referenced (Figure 5's partial overlap).
    const double stall =
        std::max(pf->entry.completion_ms - period_start, 0.0);
    metrics_.elapsed_ms += stall;
    metrics_.stall_ms += stall;
    policy_->on_prefetch_consumed(pf->entry, ctx);
  } else {
    outcome = AccessOutcome::kMiss;
    ++metrics_.misses;
    stack_.record(/*hit=*/false);
    metrics_.elapsed_ms += config_.timing.t_driver;
    const double completion = disks_.submit(block, metrics_.elapsed_ms);
    const double stall = completion - metrics_.elapsed_ms;
    metrics_.elapsed_ms = completion;
    metrics_.stall_ms += stall;
    if (cache_.free_buffers() == 0) {
      policy_->reclaim_for_demand(ctx);
      PFP_REQUIRE(cache_.free_buffers() >= 1);
    }
    cache_.admit_demand(block);
  }

  // Policy turn: learn from the access, then issue this period's
  // prefetches; each costs T_driver of CPU time (Figure 3b).
  const std::uint64_t issued_before = metrics_.policy.prefetches_issued;
  policy_->on_access(block, outcome, ctx);
  const std::uint64_t issued =
      metrics_.policy.prefetches_issued - issued_before;
  metrics_.elapsed_ms +=
      static_cast<double>(issued) * config_.timing.t_driver;

  // Keep the disk aggregates current so online (push-style) users see
  // fresh metrics without a run() epilogue.
  metrics_.disk_queue_delay_ms = disks_.queue_delay_ms();
  metrics_.disk_requests = disks_.requests();

  PFP_DASSERT(cache_.resident() <= cache_.total_blocks());
}

Result Simulator::run(const trace::Trace& trace) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    step(trace, i);
  }
  Result result;
  result.config = config_;
  result.policy_name = policy_->name();
  result.trace_name = trace.name();
  result.metrics = metrics_;
  return result;
}

Result simulate(const SimConfig& config, const trace::Trace& trace) {
  Simulator simulator(config);
  return simulator.run(trace);
}

}  // namespace pfp::sim
