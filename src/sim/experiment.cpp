#include "sim/experiment.hpp"

namespace pfp::sim {

const std::vector<std::size_t>& default_cache_sizes() {
  static const std::vector<std::size_t> kSizes = {128,  256,  512, 1024,
                                                  2048, 4096, 8192};
  return kSizes;
}

std::vector<Result> run_serial(const std::vector<RunSpec>& specs) {
  std::vector<Result> results;
  results.reserve(specs.size());
  for (const auto& spec : specs) {
    results.push_back(simulate(spec.config, *spec.trace));
  }
  return results;
}

std::vector<RunSpec> grid(const trace::Trace& trace,
                          const std::vector<std::size_t>& cache_sizes,
                          const std::vector<core::policy::PolicySpec>& specs,
                          const core::costben::TimingParams& timing) {
  std::vector<RunSpec> out;
  out.reserve(cache_sizes.size() * specs.size());
  for (const std::size_t blocks : cache_sizes) {
    for (const auto& policy : specs) {
      RunSpec run;
      run.trace = &trace;
      run.config.cache_blocks = blocks;
      run.config.timing = timing;
      run.config.policy = policy;
      out.push_back(run);
    }
  }
  return out;
}

std::uint64_t default_references(trace::Workload workload) {
  switch (workload) {
    case trace::Workload::kCello:
      return 220'000;  // paper: 3.5 M
    case trace::Workload::kSnake:
      return 220'000;  // paper: 3.9 M
    case trace::Workload::kCad:
      return 147'000;  // paper: 147 K (kept 1:1)
    case trace::Workload::kSitar:
      return 220'000;  // paper: 665 K
  }
  return 200'000;
}

}  // namespace pfp::sim
