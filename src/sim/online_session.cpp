#include "sim/online_session.hpp"

#include <stdexcept>

namespace pfp::sim {

OnlineSession::OnlineSession(SimConfig config)
    : config_(config), window_("online") {
  if (config.policy.kind == core::policy::PolicyKind::kPerfectSelector) {
    throw std::invalid_argument(
        "perfect-selector needs future knowledge and cannot run online");
  }
  simulator_ = std::make_unique<Simulator>(config);
  window_.reserve(1);
}

OnlineSession::~OnlineSession() = default;
OnlineSession::OnlineSession(OnlineSession&&) noexcept = default;
OnlineSession& OnlineSession::operator=(OnlineSession&&) noexcept = default;

OnlineSession::AccessResult OnlineSession::access(trace::BlockId block) {
  const Metrics& m = simulator_->metrics();
  const double elapsed_before = m.elapsed_ms;
  const std::uint64_t demand_before = m.demand_hits;
  const std::uint64_t prefetch_before = m.prefetch_hits;

  window_.clear();
  window_.append(block);
  simulator_->step(window_, 0);

  AccessResult result;
  if (m.demand_hits > demand_before) {
    result.outcome = Outcome::kDemandHit;
  } else if (m.prefetch_hits > prefetch_before) {
    result.outcome = Outcome::kPrefetchHit;
  } else {
    result.outcome = Outcome::kMiss;
  }
  // Everything the step charged except the caller's own compute.
  result.latency_ms =
      m.elapsed_ms - elapsed_before - config_.timing.t_cpu;
  return result;
}

const Metrics& OnlineSession::metrics() const {
  return simulator_->metrics();
}

const cache::BufferCache& OnlineSession::buffer_cache() const {
  return simulator_->buffer_cache();
}

}  // namespace pfp::sim
