#include "sim/online_session.hpp"

#include <stdexcept>
#include <utility>

namespace pfp::sim {

OnlineSession::OnlineSession(SimConfig config) : config_(config) {
  if (config.policy.kind == core::policy::PolicyKind::kPerfectSelector) {
    throw std::invalid_argument(
        "perfect-selector needs future knowledge and cannot run online");
  }
  engine_ = std::make_unique<engine::PrefetchEngine>(config);
}

OnlineSession::~OnlineSession() = default;
OnlineSession::OnlineSession(OnlineSession&&) noexcept = default;

OnlineSession& OnlineSession::operator=(OnlineSession&& other) noexcept {
  // Self-move must leave the session valid (the defaulted operator would
  // null out engine_ through unique_ptr's self-move).
  if (this != &other) {
    config_ = other.config_;
    engine_ = std::move(other.engine_);
  }
  return *this;
}

OnlineSession::AccessResult OnlineSession::access(trace::BlockId block) {
  return engine_->access(block);
}

const Metrics& OnlineSession::metrics() const { return engine_->metrics(); }

const cache::BufferCache& OnlineSession::buffer_cache() const {
  return engine_->buffer_cache();
}

}  // namespace pfp::sim
