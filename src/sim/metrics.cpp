#include "sim/metrics.hpp"

#include <sstream>

#include "util/string_utils.hpp"

namespace pfp::sim {

namespace {

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

double Metrics::miss_rate() const { return ratio(misses, accesses); }

double Metrics::prefetch_cache_hit_rate() const {
  return ratio(prefetch_hits, policy.prefetches_issued);
}

double Metrics::prefetches_per_access() const {
  return accesses == 0 ? 0.0
                       : static_cast<double>(policy.prefetches_issued) /
                             static_cast<double>(accesses);
}

double Metrics::mean_prefetch_probability() const {
  return policy.tree_prefetches_issued == 0
             ? 0.0
             : policy.sum_prefetch_probability /
                   static_cast<double>(policy.tree_prefetches_issued);
}

double Metrics::candidates_cached_fraction() const {
  return ratio(policy.candidates_already_cached, policy.candidates_chosen);
}

double Metrics::prediction_accuracy() const {
  return ratio(policy.predictable, accesses);
}

double Metrics::predictable_uncached_fraction() const {
  return ratio(policy.predictable_uncached, policy.predictable);
}

double Metrics::lvc_revisit_rate() const {
  return ratio(policy.lvc_followed, policy.lvc_opportunities);
}

double Metrics::lvc_cached_fraction() const {
  return ratio(policy.lvc_cached, policy.lvc_checks);
}

double Metrics::prefetch_traffic_ratio() const {
  return ratio(policy.prefetches_issued, misses);
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "accesses:            " << util::format_count(accesses) << "\n"
     << "miss rate:           " << util::format_percent(miss_rate()) << "\n"
     << "demand hits:         " << util::format_count(demand_hits) << "\n"
     << "prefetch hits:       " << util::format_count(prefetch_hits) << "\n"
     << "prefetches issued:   " << util::format_count(policy.prefetches_issued)
     << " (" << util::format_double(prefetches_per_access(), 3)
     << " per access)\n"
     << "prefetch hit rate:   "
     << util::format_percent(prefetch_cache_hit_rate()) << "\n"
     << "prediction accuracy: " << util::format_percent(prediction_accuracy())
     << "\n"
     << "elapsed (simulated): " << util::format_double(elapsed_ms / 1000.0, 2)
     << " s (stall " << util::format_double(stall_ms / 1000.0, 2) << " s)\n";
  return os.str();
}

}  // namespace pfp::sim
