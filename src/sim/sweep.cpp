#include "sim/sweep.hpp"

#include <future>

#include "util/thread_pool.hpp"

namespace pfp::sim {

std::vector<Result> run_parallel(const std::vector<RunSpec>& specs,
                                 std::size_t threads) {
  util::ThreadPool pool(threads);
  std::vector<std::future<Result>> futures;
  futures.reserve(specs.size());
  for (const auto& spec : specs) {
    futures.push_back(
        pool.submit([&spec] { return simulate(spec.config, *spec.trace); }));
  }
  std::vector<Result> results;
  results.reserve(specs.size());
  for (auto& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

}  // namespace pfp::sim
