#include "sim/sweep.hpp"

#include <future>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace pfp::sim {

// Concurrency contract: each task touches only its own `spec` (read-only
// after this frame builds the vector) and a private engine; the only
// shared state is the pool's internal queue, whose locking is annotated
// and checked in util::ThreadPool.  Results cross threads exclusively
// through std::future's synchronization, so nothing here needs a
// capability of its own.
std::vector<Result> run_parallel(const std::vector<RunSpec>& specs,
                                 std::size_t threads) {
  std::vector<Result> results;
  if (specs.empty()) {
    return results;  // nothing to run: skip pool startup entirely
  }
  util::ThreadPool pool(threads);
  std::vector<std::future<Result>> futures;
  futures.reserve(specs.size());
  for (const auto& spec : specs) {
    futures.push_back(pool.submit([&spec] {
      if (spec.trace == nullptr) {
        throw std::invalid_argument("run_parallel: RunSpec without a trace");
      }
      return simulate(spec.config, *spec.trace);
    }));
  }
  results.reserve(specs.size());
  // Drain every future before rethrowing so no worker still references
  // `specs` (or a half-built result) when an exception leaves this frame.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      results.push_back(future.get());
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
  return results;
}

}  // namespace pfp::sim
