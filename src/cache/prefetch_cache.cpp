#include "cache/prefetch_cache.hpp"

#include "util/assert.hpp"
#include "util/audit.hpp"

namespace pfp::cache {

PrefetchCache::PrefetchCache(std::size_t max_blocks)
    : max_blocks_(max_blocks) {
  PFP_REQUIRE(max_blocks >= 1);
  slots_.resize(max_blocks);
  slot_generation_.resize(max_blocks, 0);
  free_slots_.reserve(max_blocks);
  for (std::size_t i = max_blocks; i > 0; --i) {
    free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  insert_lru_.resize(max_blocks);
  obl_lru_.resize(max_blocks);
  map_.reserve(max_blocks * 2);
}

std::optional<PrefetchEntry> PrefetchCache::lookup(BlockId block) const {
  const auto it = map_.find(block);
  if (it == map_.end()) {
    return std::nullopt;
  }
  return slots_[it->second];
}

void PrefetchCache::insert(const PrefetchEntry& entry) {
  PFP_REQUIRE(!map_.contains(entry.block));
  PFP_REQUIRE(!free_slots_.empty());
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  slots_[slot] = entry;
  slot_generation_[slot] = ++generation_;
  map_.emplace(entry.block, slot);
  insert_lru_.push_front(slot);
  if (entry.obl) {
    obl_lru_.push_front(slot);
  }
  heap_.push(HeapItem{entry.eject_cost, slot, slot_generation_[slot]});
  PFP_AUDIT_SWEEP(*this);
}

PrefetchEntry PrefetchCache::remove(BlockId block) {
  const auto it = map_.find(block);
  PFP_REQUIRE(it != map_.end());
  const std::uint32_t slot = it->second;
  const PrefetchEntry entry = slots_[slot];
  map_.erase(it);
  insert_lru_.erase(slot);
  if (entry.obl) {
    obl_lru_.erase(slot);
  }
  slot_generation_[slot] = ++generation_;  // invalidates heap items
  free_slots_.push_back(slot);
  PFP_AUDIT_SWEEP(*this);
  return entry;
}

void PrefetchCache::prune_heap() const {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.top();
    if (slot_generation_[top.slot] == top.generation) {
      return;
    }
    heap_.pop();
  }
}

std::optional<PrefetchEntry> PrefetchCache::cheapest() const {
  prune_heap();
  if (heap_.empty()) {
    return std::nullopt;
  }
  return slots_[heap_.top().slot];
}

std::optional<BlockId> PrefetchCache::oldest_obl() const {
  const auto slot = obl_lru_.back();
  if (slot == util::LruList::npos) {
    return std::nullopt;
  }
  return slots_[slot].block;
}

std::optional<BlockId> PrefetchCache::oldest_any() const {
  const auto slot = insert_lru_.back();
  if (slot == util::LruList::npos) {
    return std::nullopt;
  }
  return slots_[slot].block;
}

void PrefetchCache::reprice(BlockId block, double eject_cost) {
  const auto it = map_.find(block);
  PFP_REQUIRE(it != map_.end());
  const std::uint32_t slot = it->second;
  slots_[slot].eject_cost = eject_cost;
  slot_generation_[slot] = ++generation_;
  heap_.push(HeapItem{eject_cost, slot, slot_generation_[slot]});
  PFP_AUDIT_SWEEP(*this);
}

std::vector<PrefetchEntry> PrefetchCache::entries() const {
  std::vector<PrefetchEntry> out;
  out.reserve(map_.size());
  for (const auto& [block, slot] : map_) {
    out.push_back(slots_[slot]);
  }
  return out;
}

void PrefetchCache::audit() const {
#if PFP_AUDIT_ENABLED
  PFP_AUDIT("PrefetchCache", map_.size() == insert_lru_.size(),
            "resident map and insertion list disagree on size");
  PFP_AUDIT("PrefetchCache", map_.size() + free_slots_.size() == max_blocks_,
            "slot accounting leak (resident + free != capacity)");
  std::size_t obl_seen = 0;
  for (const auto& [block, slot] : map_) {
    const PrefetchEntry& entry = slots_[slot];
    PFP_AUDIT("PrefetchCache", entry.block == block,
              "mapped slot stores a different block");
    PFP_AUDIT("PrefetchCache", insert_lru_.contains(slot),
              "resident slot missing from the insertion recency list");
    PFP_AUDIT("PrefetchCache", entry.obl == obl_lru_.contains(slot),
              "OBL flag disagrees with OBL recency list membership");
    PFP_AUDIT("PrefetchCache",
              entry.probability >= 0.0 && entry.probability <= 1.0,
              "stored access probability outside [0, 1]");
    if (entry.obl) {
      ++obl_seen;
    }
  }
  PFP_AUDIT("PrefetchCache", obl_seen == obl_lru_.size(),
            "OBL entry count does not match OBL list size");
#endif
}

}  // namespace pfp::cache
