// Prefetch cache: blocks fetched ahead of use, not yet referenced
// (Figure 2).
//
// Each entry carries the prediction metadata the cost model needs: the
// access probability p_b and tree distance d_b at prefetch time, plus an
// ejection cost precomputed by the policy from Equation 11 (the cache is
// mechanism; pricing is the policy's job).  Victim selection returns the
// entry with the lowest stored ejection cost, via a lazy-deletion min-heap
// (O(log n) amortized).
//
// One-block-lookahead entries are tagged `obl` and additionally threaded
// on their own recency list so the next-limit 10 %-of-cache quota can be
// enforced in O(1) (Section 9: "we limit the fraction of the cache
// devoted to prefetch blocks to 10%").
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "trace/record.hpp"
#include "util/flat_map.hpp"
#include "util/lru_list.hpp"

namespace pfp::cache {

using trace::BlockId;

struct PrefetchEntry {
  BlockId block = 0;
  double probability = 0.0;   ///< p_b when the prefetch was issued
  std::uint32_t depth = 0;    ///< d_b when the prefetch was issued
  double eject_cost = 0.0;    ///< policy-computed C_pr(b)
  bool obl = false;           ///< one-block-lookahead (quota-managed)
  std::uint64_t issued_period = 0;  ///< access period of the prefetch
  /// Virtual time the disk read completes (set at issue from the disk
  /// model); a reference before this time stalls for the remainder.
  double completion_ms = 0.0;
};

class PrefetchCache {
 public:
  explicit PrefetchCache(std::size_t max_blocks);

  /// Hit test without promotion semantics (prefetch blocks have no
  /// recency of their own once referenced — they migrate to the demand
  /// cache).  Returns the entry if resident.
  [[nodiscard]] std::optional<PrefetchEntry> lookup(BlockId block) const;

  [[nodiscard]] bool contains(BlockId block) const {
    return map_.contains(block);
  }

  /// Inserts a prefetched block.  Must not be resident; cache must not be
  /// full (the caller reclaims buffers first).
  void insert(const PrefetchEntry& entry);

  /// Removes a resident block (on reference-migration or ejection) and
  /// returns its entry.
  PrefetchEntry remove(BlockId block);

  /// Entry with the smallest eject_cost, if any (no mutation).
  [[nodiscard]] std::optional<PrefetchEntry> cheapest() const;

  /// Least recently inserted OBL entry, if any.
  [[nodiscard]] std::optional<BlockId> oldest_obl() const;

  /// Least recently inserted entry of any kind, if any.
  [[nodiscard]] std::optional<BlockId> oldest_any() const;

  /// Updates the stored ejection cost of a resident block.
  void reprice(BlockId block, double eject_cost);

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  [[nodiscard]] std::size_t obl_count() const noexcept {
    return obl_lru_.size();
  }
  [[nodiscard]] std::size_t max_blocks() const noexcept { return max_blocks_; }

  /// Resident entries in unspecified order (tests, introspection; O(n)).
  [[nodiscard]] std::vector<PrefetchEntry> entries() const;

  /// SIM_AUDIT sweep: slot accounting, insertion/OBL list agreement, OBL
  /// flag consistency, probability bounds (docs/static-analysis.md).
  /// No-op unless compiled with SIM_AUDIT >= 1.
  void audit() const;

 private:
  friend struct AuditTestAccess;  // corruption hooks for audit tests

  struct HeapItem {
    double cost;
    std::uint32_t slot;
    std::uint64_t generation;
    bool operator>(const HeapItem& other) const {
      return cost > other.cost;
    }
  };

  void prune_heap() const;

  std::size_t max_blocks_;
  std::vector<PrefetchEntry> slots_;
  std::vector<std::uint64_t> slot_generation_;
  std::vector<std::uint32_t> free_slots_;
  util::FlatMap<BlockId, std::uint32_t> map_;
  util::LruList insert_lru_;  ///< all entries, insertion recency
  util::LruList obl_lru_;     ///< OBL entries only
  mutable std::priority_queue<HeapItem, std::vector<HeapItem>,
                              std::greater<HeapItem>>
      heap_;
  std::uint64_t generation_ = 0;
};

}  // namespace pfp::cache
