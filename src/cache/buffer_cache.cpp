#include "cache/buffer_cache.hpp"

#include "util/assert.hpp"
#include "util/audit.hpp"

namespace pfp::cache {

BufferCache::BufferCache(std::size_t total_blocks)
    : total_blocks_(total_blocks),
      demand_(total_blocks),
      prefetch_(total_blocks) {
  PFP_REQUIRE(total_blocks >= 2);
}

AccessResult BufferCache::access(BlockId block) {
  if (const auto depth = demand_.lookup_touch(block)) {
    return DemandHit{*depth};
  }
  if (prefetch_.contains(block)) {
    // Figure 2 (iii): first reference moves the block into the demand
    // cache; the buffer count is unchanged.
    const PrefetchEntry entry = prefetch_.remove(block);
    demand_.insert(block);
    PFP_AUDIT_SWEEP(*this);
    return PrefetchHit{entry};
  }
  return Miss{};
}

void BufferCache::admit_demand(BlockId block) {
  PFP_REQUIRE(free_buffers() >= 1);
  demand_.insert(block);
  PFP_AUDIT_SWEEP(*this);
}

void BufferCache::admit_prefetch(const PrefetchEntry& entry) {
  PFP_REQUIRE(free_buffers() >= 1);
  PFP_REQUIRE(!demand_.contains(entry.block));
  prefetch_.insert(entry);
  PFP_AUDIT_SWEEP(*this);
}

void BufferCache::audit() const {
#if PFP_AUDIT_ENABLED
  demand_.audit();
  prefetch_.audit();
  PFP_AUDIT("BufferCache", resident() <= total_blocks_,
            "partition sizes exceed the shared buffer pool");
  // Figure 2: the partitions are disjoint — a block referenced while
  // prefetched migrates, it is never duplicated.
  for (const PrefetchEntry& entry : prefetch_.entries()) {
    PFP_AUDIT("BufferCache", !demand_.contains(entry.block),
              "block resident in both the demand and prefetch partitions");
  }
#endif
}

}  // namespace pfp::cache
