// Disk service model.
//
// The paper assumes "an infinite number of available disks and no wait
// time for disk accesses" (Section 6.3).  This model makes that
// assumption explicit and optionally relaxes it: a finite array of disks,
// each serving requests FIFO with the constant T_disk service time,
// blocks striped across disks by hash.  With finite disks, prefetch
// traffic queues behind demand traffic and the infinite-disk assumption
// can be quantified (bench/abl01_disk_congestion).
//
// The model runs in simulator virtual time: submitting a request returns
// its completion time; no event queue is needed because service times are
// constant and per-disk FIFO order is submission order.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace pfp::cache {

struct DiskConfig {
  /// Number of independent disks; 0 = infinite (the paper's assumption:
  /// every request completes exactly service_ms after submission).
  std::uint32_t disks = 0;
  /// Constant per-request service time (the paper's T_disk).
  double service_ms = 15.0;
};

class DiskArray {
 public:
  explicit DiskArray(DiskConfig config);

  /// Submits a read of `block` at virtual time `now_ms`; returns its
  /// completion time (>= now_ms + service).  Finite disks queue.
  double submit(trace::BlockId block, double now_ms);

  /// Total time requests spent waiting behind other requests (ms).
  [[nodiscard]] double queue_delay_ms() const noexcept { return queue_delay_ms_; }
  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] const DiskConfig& config() const noexcept { return config_; }

 private:
  DiskConfig config_;
  std::vector<double> disk_free_at_;
  double queue_delay_ms_ = 0.0;
  std::uint64_t requests_ = 0;
};

}  // namespace pfp::cache
