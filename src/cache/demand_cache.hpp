// Demand cache: LRU-ordered blocks that have been referenced (Figure 2).
//
// Besides membership and LRU eviction, the cost model needs the LRU stack
// depth of every hit to estimate H(n) - H(n-1) (Equation 13), so lookups
// return the 1-based stack position computed with a Fenwick tree over
// last-access timestamps (O(log n) per access, exact).
//
// The demand cache does not evict on its own: it shares a fixed buffer
// pool with the prefetch cache, and the replacement decision between the
// two is the policy's job (Section 7, step 2).  Capacity here is only the
// upper bound implied by the total pool.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/record.hpp"
#include "util/flat_map.hpp"
#include "util/lru_list.hpp"

namespace pfp::cache {

using trace::BlockId;

class DemandCache {
 public:
  explicit DemandCache(std::size_t max_blocks);

  /// Hit test with promotion: on hit, returns the 1-based LRU stack depth
  /// the block was found at (1 = was already MRU) and promotes it; on
  /// miss returns nullopt.
  std::optional<std::size_t> lookup_touch(BlockId block);

  /// Non-mutating membership test.
  [[nodiscard]] bool contains(BlockId block) const {
    return map_.contains(block);
  }

  /// Inserts a block at MRU.  The block must not be resident and the
  /// cache must not be full.
  void insert(BlockId block);

  /// Evicts and returns the LRU block; the cache must be non-empty.
  BlockId evict_lru();

  /// The block an eviction would remove (no mutation); nullopt if empty.
  [[nodiscard]] std::optional<BlockId> lru_block() const;

  /// Removes a specific resident block (used when a block is ejected for
  /// reasons other than LRU order, e.g. invalidation in tests).
  void erase(BlockId block);

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  [[nodiscard]] std::size_t max_blocks() const noexcept { return max_blocks_; }

  /// Resident blocks in LRU -> MRU order (engine snapshots re-insert them
  /// in this order to reproduce the recency stack; O(n), const).
  [[nodiscard]] std::vector<BlockId> blocks_lru_to_mru() const;

  /// SIM_AUDIT sweep: slot accounting, LRU <-> map agreement, Fenwick
  /// mark count (docs/static-analysis.md).  No-op unless compiled with
  /// SIM_AUDIT >= 1.
  void audit() const;

 private:
  friend struct AuditTestAccess;  // corruption hooks for audit tests

  [[nodiscard]] std::size_t depth_of(std::uint64_t last_time) const;
  void mark(std::uint64_t time, int delta);
  [[nodiscard]] std::int64_t marks_at_most(std::uint64_t time) const;
  void compact();

  std::size_t max_blocks_;
  std::vector<BlockId> slot_block_;
  std::vector<std::uint64_t> slot_time_;
  std::vector<std::uint32_t> free_slots_;
  util::FlatMap<BlockId, std::uint32_t> map_;
  util::LruList lru_;

  // Fenwick tree over timestamps within the current window.
  std::vector<std::int64_t> fenwick_;
  std::uint64_t now_ = 0;
  std::uint64_t window_ = 0;
};

}  // namespace pfp::cache
