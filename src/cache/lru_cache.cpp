#include "cache/lru_cache.hpp"

#include "util/assert.hpp"

namespace pfp::cache {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {
  PFP_REQUIRE(capacity >= 1);
  slot_block_.resize(capacity);
  free_slots_.reserve(capacity);
  for (std::size_t i = capacity; i > 0; --i) {
    free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  lru_.resize(capacity);
  map_.reserve(capacity * 2);
}

bool LruCache::access(BlockId block) {
  if (const auto it = map_.find(block); it != map_.end()) {
    lru_.touch(it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = lru_.pop_back();
    PFP_DASSERT(slot != util::LruList::npos);
    map_.erase(slot_block_[slot]);
  }
  slot_block_[slot] = block;
  map_.emplace(block, slot);
  lru_.push_front(slot);
  return false;
}

std::vector<BlockId> LruCache::contents_mru_order() const {
  std::vector<BlockId> out;
  out.reserve(map_.size());
  for (auto slot = lru_.front(); slot != util::LruList::npos;
       slot = lru_.next(slot)) {
    out.push_back(slot_block_[slot]);
  }
  return out;
}

}  // namespace pfp::cache
