#include "cache/demand_cache.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/audit.hpp"

namespace pfp::cache {

DemandCache::DemandCache(std::size_t max_blocks) : max_blocks_(max_blocks) {
  PFP_REQUIRE(max_blocks >= 1);
  slot_block_.resize(max_blocks);
  slot_time_.resize(max_blocks);
  free_slots_.reserve(max_blocks);
  for (std::size_t i = max_blocks; i > 0; --i) {
    free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  lru_.resize(max_blocks);
  map_.reserve(max_blocks * 2);
  window_ = std::max<std::uint64_t>(4 * max_blocks, 4096);
  fenwick_.assign(window_ + 1, 0);
}

void DemandCache::mark(std::uint64_t time, int delta) {
  for (std::uint64_t i = time + 1; i < fenwick_.size();
       i += i & (~i + 1)) {
    fenwick_[i] += delta;
  }
}

std::int64_t DemandCache::marks_at_most(std::uint64_t time) const {
  std::int64_t sum = 0;
  for (std::uint64_t i = time + 1; i > 0; i -= i & (~i + 1)) {
    sum += fenwick_[i];
  }
  return sum;
}

std::size_t DemandCache::depth_of(std::uint64_t last_time) const {
  // Blocks touched strictly after last_time sit above this block on the
  // LRU stack; +1 converts to a 1-based position.
  const std::int64_t above =
      static_cast<std::int64_t>(map_.size()) - marks_at_most(last_time);
  PFP_DASSERT(above >= 0);
  return static_cast<std::size_t>(above) + 1;
}

void DemandCache::compact() {
  // Renumber resident blocks 0..n-1 in LRU-to-MRU order and rebuild the
  // Fenwick tree; happens once per `window_ - capacity` accesses.
  std::fill(fenwick_.begin(), fenwick_.end(), 0);
  std::uint64_t t = 0;
  for (auto slot = lru_.back(); slot != util::LruList::npos;
       slot = lru_.prev(slot)) {
    slot_time_[slot] = t;
    mark(t, +1);
    ++t;
  }
  now_ = t;
}

std::optional<std::size_t> DemandCache::lookup_touch(BlockId block) {
  const auto it = map_.find(block);
  if (it == map_.end()) {
    return std::nullopt;
  }
  const std::uint32_t slot = it->second;
  const std::size_t depth = depth_of(slot_time_[slot]);
  lru_.touch(slot);
  if (now_ >= window_) {
    compact();
  }
  mark(slot_time_[slot], -1);
  slot_time_[slot] = now_;
  mark(now_, +1);
  ++now_;
  PFP_AUDIT_SWEEP(*this);
  return depth;
}

void DemandCache::insert(BlockId block) {
  PFP_REQUIRE(!map_.contains(block));
  PFP_REQUIRE(!free_slots_.empty());
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  if (now_ >= window_) {
    compact();
  }
  slot_block_[slot] = block;
  slot_time_[slot] = now_;
  mark(now_, +1);
  ++now_;
  map_.emplace(block, slot);
  lru_.push_front(slot);
  PFP_AUDIT_SWEEP(*this);
}

BlockId DemandCache::evict_lru() {
  const std::uint32_t slot = lru_.pop_back();
  PFP_REQUIRE(slot != util::LruList::npos);
  const BlockId block = slot_block_[slot];
  mark(slot_time_[slot], -1);
  map_.erase(block);
  free_slots_.push_back(slot);
  PFP_AUDIT_SWEEP(*this);
  return block;
}

std::vector<BlockId> DemandCache::blocks_lru_to_mru() const {
  std::vector<BlockId> blocks;
  blocks.reserve(lru_.size());
  for (auto slot = lru_.back(); slot != util::LruList::npos;
       slot = lru_.prev(slot)) {
    blocks.push_back(slot_block_[slot]);
  }
  return blocks;
}

std::optional<BlockId> DemandCache::lru_block() const {
  const auto slot = lru_.back();
  if (slot == util::LruList::npos) {
    return std::nullopt;
  }
  return slot_block_[slot];
}

void DemandCache::erase(BlockId block) {
  const auto it = map_.find(block);
  PFP_REQUIRE(it != map_.end());
  const std::uint32_t slot = it->second;
  lru_.erase(slot);
  mark(slot_time_[slot], -1);
  map_.erase(it);
  free_slots_.push_back(slot);
  PFP_AUDIT_SWEEP(*this);
}

void DemandCache::audit() const {
#if PFP_AUDIT_ENABLED
  PFP_AUDIT("DemandCache", map_.size() == lru_.size(),
            "resident map and LRU list disagree on size");
  PFP_AUDIT("DemandCache", map_.size() + free_slots_.size() == max_blocks_,
            "slot accounting leak (resident + free != capacity)");
  // Walk the LRU list: every linked slot must map back to itself through
  // the resident map.  Bound the walk so a corrupted link cannot loop
  // forever under a non-aborting handler.
  std::size_t walked = 0;
  for (auto slot = lru_.front();
       slot != util::LruList::npos && walked <= map_.size();
       slot = lru_.next(slot)) {
    ++walked;
    const auto it = map_.find(slot_block_[slot]);
    PFP_AUDIT("DemandCache", it != map_.end() && it->second == slot,
              "LRU slot does not round-trip through the resident map");
    if (it == map_.end() || it->second != slot) {
      return;  // stop the walk: the list and map no longer correspond
    }
  }
  PFP_AUDIT("DemandCache", walked == map_.size(),
            "LRU walk length does not match resident count");
  // Rebuild the Fenwick tree from the resident slots' timestamps and
  // compare element-wise: a root-level prefix query alone would miss
  // drift in interior nodes that no coarse query traverses.
  std::vector<std::int64_t> expected(fenwick_.size(), 0);
  for (const auto& entry : map_) {
    for (std::uint64_t i = slot_time_[entry.second] + 1;
         i < expected.size(); i += i & (~i + 1)) {
      expected[i] += 1;
    }
  }
  PFP_AUDIT("DemandCache", expected == fenwick_,
            "Fenwick stack-depth marks do not match resident timestamps");
#endif
}

}  // namespace pfp::cache
