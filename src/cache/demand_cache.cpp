#include "cache/demand_cache.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pfp::cache {

DemandCache::DemandCache(std::size_t max_blocks) : max_blocks_(max_blocks) {
  PFP_REQUIRE(max_blocks >= 1);
  slot_block_.resize(max_blocks);
  slot_time_.resize(max_blocks);
  free_slots_.reserve(max_blocks);
  for (std::size_t i = max_blocks; i > 0; --i) {
    free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  lru_.resize(max_blocks);
  map_.reserve(max_blocks * 2);
  window_ = std::max<std::uint64_t>(4 * max_blocks, 4096);
  fenwick_.assign(window_ + 1, 0);
}

void DemandCache::mark(std::uint64_t time, int delta) {
  for (std::uint64_t i = time + 1; i < fenwick_.size();
       i += i & (~i + 1)) {
    fenwick_[i] += delta;
  }
}

std::int64_t DemandCache::marks_at_most(std::uint64_t time) const {
  std::int64_t sum = 0;
  for (std::uint64_t i = time + 1; i > 0; i -= i & (~i + 1)) {
    sum += fenwick_[i];
  }
  return sum;
}

std::size_t DemandCache::depth_of(std::uint64_t last_time) const {
  // Blocks touched strictly after last_time sit above this block on the
  // LRU stack; +1 converts to a 1-based position.
  const std::int64_t above =
      static_cast<std::int64_t>(map_.size()) - marks_at_most(last_time);
  PFP_DASSERT(above >= 0);
  return static_cast<std::size_t>(above) + 1;
}

void DemandCache::compact() {
  // Renumber resident blocks 0..n-1 in LRU-to-MRU order and rebuild the
  // Fenwick tree; happens once per `window_ - capacity` accesses.
  std::fill(fenwick_.begin(), fenwick_.end(), 0);
  std::uint64_t t = 0;
  for (auto slot = lru_.back(); slot != util::LruList::npos;
       slot = lru_.prev(slot)) {
    slot_time_[slot] = t;
    mark(t, +1);
    ++t;
  }
  now_ = t;
}

std::optional<std::size_t> DemandCache::lookup_touch(BlockId block) {
  const auto it = map_.find(block);
  if (it == map_.end()) {
    return std::nullopt;
  }
  const std::uint32_t slot = it->second;
  const std::size_t depth = depth_of(slot_time_[slot]);
  lru_.touch(slot);
  if (now_ >= window_) {
    compact();
  }
  mark(slot_time_[slot], -1);
  slot_time_[slot] = now_;
  mark(now_, +1);
  ++now_;
  return depth;
}

void DemandCache::insert(BlockId block) {
  PFP_REQUIRE(!map_.contains(block));
  PFP_REQUIRE(!free_slots_.empty());
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  if (now_ >= window_) {
    compact();
  }
  slot_block_[slot] = block;
  slot_time_[slot] = now_;
  mark(now_, +1);
  ++now_;
  map_.emplace(block, slot);
  lru_.push_front(slot);
}

BlockId DemandCache::evict_lru() {
  const std::uint32_t slot = lru_.pop_back();
  PFP_REQUIRE(slot != util::LruList::npos);
  const BlockId block = slot_block_[slot];
  mark(slot_time_[slot], -1);
  map_.erase(block);
  free_slots_.push_back(slot);
  return block;
}

std::optional<BlockId> DemandCache::lru_block() const {
  const auto slot = lru_.back();
  if (slot == util::LruList::npos) {
    return std::nullopt;
  }
  return slot_block_[slot];
}

void DemandCache::erase(BlockId block) {
  const auto it = map_.find(block);
  PFP_REQUIRE(it != map_.end());
  const std::uint32_t slot = it->second;
  lru_.erase(slot);
  mark(slot_time_[slot], -1);
  map_.erase(it);
  free_slots_.push_back(slot);
}

}  // namespace pfp::cache
