// Marginal LRU hit-rate estimation, H(n) - H(n-1).
//
// Equation 13 prices ejecting the demand cache's LRU buffer at
// (H(n) - H(n-1)) * (T_driver + T_disk): the hit rate lost by shrinking an
// LRU cache by one buffer equals the rate of hits at stack depth exactly
// n.  Patterson estimates this online by profiling the depth of each LRU
// hit; we do the same with depth buckets (hits at depth d land in bucket
// d / bucket_width) and exponential aging, which both denoises the sparse
// deep-tail counts and adapts to phase changes.
#pragma once

#include <cstdint>
#include <vector>

namespace pfp::cache {

class StackDistanceEstimator {
 public:
  struct Config {
    std::size_t bucket_width = 32;   ///< depths per bucket
    std::size_t max_depth = 65'536;  ///< deeper hits are clamped
    double decay = 0.9995;           ///< per-access aging factor
  };

  StackDistanceEstimator();  // default config
  explicit StackDistanceEstimator(Config config);

  /// Records one cache reference.  For hits, depth is the 1-based LRU
  /// stack position of the hit block (1 = MRU).  Misses still age the
  /// window (call with hit = false).
  void record(bool hit, std::size_t depth = 0);

  /// Estimated rate of hits at stack depth exactly n, i.e. H(n) - H(n-1),
  /// in hits per access.  n is 1-based.
  [[nodiscard]] double marginal_hit_rate(std::size_t n) const;

  /// Estimated hit rate of an LRU cache of size n (sum of marginals).
  [[nodiscard]] double hit_rate(std::size_t n) const;

  [[nodiscard]] double accesses_weighted() const noexcept { return total_weight_; }

  void reset();

 private:
  Config config_;
  std::vector<double> bucket_hits_;
  double total_weight_ = 0.0;
  std::uint32_t accesses_since_decay_ = 0;
};

}  // namespace pfp::cache
