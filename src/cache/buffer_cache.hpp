// Combined, partitioned file buffer cache (Figure 2).
//
// A fixed pool of `total_blocks` buffers shared by the demand cache and
// the prefetch cache.  The partition is dynamic: either side may grow
// while the sum stays within the pool.  Movement rules follow Figure 2:
// a referenced prefetch block migrates to the demand cache (iii); making
// room for a new fetch reclaims a buffer from either side (i/ii) — but
// *which* side is a policy decision, so BufferCache only provides the
// mechanisms and checks the pool invariant.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>

#include "cache/demand_cache.hpp"
#include "cache/prefetch_cache.hpp"

namespace pfp::cache {

/// Outcome of referencing a block.
struct DemandHit {
  std::size_t stack_depth;  ///< 1-based LRU depth of the hit
};
struct PrefetchHit {
  PrefetchEntry entry;  ///< metadata of the consumed prefetch
};
struct Miss {};
using AccessResult = std::variant<DemandHit, PrefetchHit, Miss>;

class BufferCache {
 public:
  explicit BufferCache(std::size_t total_blocks);

  /// References a block: demand hit (promoted), prefetch hit (migrated to
  /// the demand cache), or miss (no mutation).
  AccessResult access(BlockId block);

  [[nodiscard]] bool contains(BlockId block) const {
    return demand_.contains(block) || prefetch_.contains(block);
  }

  [[nodiscard]] std::size_t total_blocks() const noexcept {
    return total_blocks_;
  }
  [[nodiscard]] std::size_t resident() const noexcept {
    return demand_.size() + prefetch_.size();
  }
  [[nodiscard]] std::size_t free_buffers() const noexcept {
    return total_blocks_ - resident();
  }

  /// Admits a demand-fetched block; a buffer must be free.
  void admit_demand(BlockId block);

  /// Admits a prefetched block; a buffer must be free.
  void admit_prefetch(const PrefetchEntry& entry);

  DemandCache& demand() noexcept { return demand_; }
  [[nodiscard]] const DemandCache& demand() const noexcept { return demand_; }
  PrefetchCache& prefetch() noexcept { return prefetch_; }
  [[nodiscard]] const PrefetchCache& prefetch() const noexcept { return prefetch_; }

  /// SIM_AUDIT sweep: audits both partitions, then the Figure 2 pool
  /// invariants — partition sizes sum within the pool and no block is
  /// resident on both sides (docs/static-analysis.md).  No-op unless
  /// compiled with SIM_AUDIT >= 1.
  void audit() const;

 private:
  std::size_t total_blocks_;
  DemandCache demand_;
  PrefetchCache prefetch_;
};

}  // namespace pfp::cache
