#include "cache/disk_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pfp::cache {

namespace {

std::size_t disk_of(trace::BlockId block, std::size_t disks) {
  // splitmix-style mix so sequential blocks stripe across the array.
  std::uint64_t x = block;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>((x ^ (x >> 31)) % disks);
}

}  // namespace

DiskArray::DiskArray(DiskConfig config) : config_(config) {
  PFP_REQUIRE(config_.service_ms > 0.0);
  if (config_.disks > 0) {
    disk_free_at_.assign(config_.disks, 0.0);
  }
}

double DiskArray::submit(trace::BlockId block, double now_ms) {
  ++requests_;
  if (config_.disks == 0) {
    return now_ms + config_.service_ms;  // the paper's infinite array
  }
  double& free_at = disk_free_at_[disk_of(block, disk_free_at_.size())];
  const double start = std::max(now_ms, free_at);
  queue_delay_ms_ += start - now_ms;
  free_at = start + config_.service_ms;
  return free_at;
}

}  // namespace pfp::cache
