// Plain LRU block cache.
//
// A reusable fixed-capacity LRU set of block ids, used by tests, examples
// and as the reference model the no-prefetch configuration must match
// exactly (a property test in tests/ checks this).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"
#include "util/flat_map.hpp"
#include "util/lru_list.hpp"

namespace pfp::cache {

using trace::BlockId;

class LruCache {
 public:
  explicit LruCache(std::size_t capacity);

  /// References a block: returns true on hit (block promoted to MRU).
  /// On miss the block is inserted, evicting the LRU block if full.
  bool access(BlockId block);

  [[nodiscard]] bool contains(BlockId block) const { return map_.contains(block); }
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] double hit_rate() const noexcept {
    const auto total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 0.0;
  }

  /// Resident blocks in MRU-to-LRU order (for tests; O(n)).
  [[nodiscard]] std::vector<BlockId> contents_mru_order() const;

 private:
  std::size_t capacity_;
  std::vector<BlockId> slot_block_;
  std::vector<std::uint32_t> free_slots_;
  util::FlatMap<BlockId, std::uint32_t> map_;
  util::LruList lru_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pfp::cache
