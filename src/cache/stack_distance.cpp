#include "cache/stack_distance.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pfp::cache {

StackDistanceEstimator::StackDistanceEstimator()
    : StackDistanceEstimator(Config{}) {}

StackDistanceEstimator::StackDistanceEstimator(Config config)
    : config_(config) {
  PFP_REQUIRE(config_.bucket_width >= 1);
  PFP_REQUIRE(config_.max_depth >= config_.bucket_width);
  PFP_REQUIRE(config_.decay > 0.0 && config_.decay <= 1.0);
  bucket_hits_.resize(config_.max_depth / config_.bucket_width + 1, 0.0);
}

void StackDistanceEstimator::record(bool hit, std::size_t depth) {
  // Exponential aging with an effective window of ~1 / (1 - decay)
  // accesses.  Decaying every bucket on every access would be O(buckets)
  // on the simulator hot path, so aging is applied in chunks of 1024
  // accesses — to the buckets AND the total weight together, keeping
  // every marginal a true ratio (never > 1 between chunk boundaries).
  total_weight_ += 1.0;
  if (config_.decay < 1.0 && ++accesses_since_decay_ >= 1024) {
    double factor = 1.0;
    for (int i = 0; i < 1024; ++i) {
      factor *= config_.decay;
    }
    for (auto& b : bucket_hits_) {
      b *= factor;
    }
    total_weight_ *= factor;
    accesses_since_decay_ = 0;
  }
  if (!hit) {
    return;
  }
  PFP_DASSERT(depth >= 1);
  const std::size_t clamped = std::min(depth, config_.max_depth);
  const std::size_t bucket = (clamped - 1) / config_.bucket_width;
  bucket_hits_[std::min(bucket, bucket_hits_.size() - 1)] += 1.0;
}

double StackDistanceEstimator::marginal_hit_rate(std::size_t n) const {
  if (n == 0 || total_weight_ <= 0.0) {
    return 0.0;
  }
  const std::size_t clamped = std::min(n, config_.max_depth);
  const std::size_t bucket = (clamped - 1) / config_.bucket_width;
  const double hits =
      bucket_hits_[std::min(bucket, bucket_hits_.size() - 1)];
  // Bucket rate spread evenly over its depths.
  return hits / static_cast<double>(config_.bucket_width) / total_weight_;
}

double StackDistanceEstimator::hit_rate(std::size_t n) const {
  if (total_weight_ <= 0.0) {
    return 0.0;
  }
  const std::size_t clamped = std::min(n, config_.max_depth);
  const std::size_t full_buckets = clamped / config_.bucket_width;
  double hits = 0.0;
  for (std::size_t b = 0; b < full_buckets && b < bucket_hits_.size(); ++b) {
    hits += bucket_hits_[b];
  }
  const std::size_t remainder = clamped % config_.bucket_width;
  if (remainder != 0 && full_buckets < bucket_hits_.size()) {
    hits += bucket_hits_[full_buckets] * static_cast<double>(remainder) /
            static_cast<double>(config_.bucket_width);
  }
  return hits / total_weight_;
}

void StackDistanceEstimator::reset() {
  std::fill(bucket_hits_.begin(), bucket_hits_.end(), 0.0);
  total_weight_ = 0.0;
  accesses_since_decay_ = 0;
}

}  // namespace pfp::cache
