// Figure 12: prefetch-cache hit rate as T_cpu sweeps from 20 to 640 ms
// (tree scheme, 1024-block cache, all traces).
//
// Paper shape: the hit rate drops as T_cpu grows (more speculative
// prefetching becomes affordable) and then flattens; overall miss rate
// stays largely insensitive above T_cpu = 50 ms — the justification for
// fixing T_cpu = 50 ms elsewhere.
#include <iostream>

#include "common.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv,
      "Figure 12 — prefetch cache hit rate vs T_cpu (1024-block cache)");

  std::vector<sim::RunSpec> specs;
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    for (const double t_cpu : {2.0, 5.0, 10.0, 20.0, 50.0, 160.0,
                               640.0}) {
      sim::RunSpec spec;
      spec.trace = t;
      spec.config.cache_blocks = 1024;
      spec.config.timing.t_cpu = t_cpu;
      spec.config.policy = bench::spec_of(core::policy::PolicyKind::kTree);
      specs.push_back(spec);
    }
  }
  const auto results = bench::run_all(specs);

  for (const trace::Workload w : trace::all_workloads()) {
    const auto name = trace::workload_name(w);
    std::cout << "\n== " << name << " ==\n";
    util::TextTable table({"T_cpu(ms)", "prefetch hit rate", "miss rate"});
    for (const auto& r : results) {
      if (r.trace_name == name) {
        table.row({util::format_double(r.config.timing.t_cpu, 0),
                   util::format_percent(r.metrics.prefetch_cache_hit_rate()),
                   util::format_percent(r.metrics.miss_rate())});
      }
    }
    table.print(std::cout);
  }
  if (sim::maybe_write_csv(env.csv_path, results)) {
    std::cout << "(full CSV written to " << env.csv_path << ")\n";
  }
  return 0;
}
