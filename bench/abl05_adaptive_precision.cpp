// Ablation: the adaptive precision floor (the paper's future work,
// Section 9.2.2) vs the plain cost-benefit tree.
//
// Measures whether "eliminating mispredicted blocks" via hit-ratio
// feedback trims wasted prefetch traffic without giving up miss-rate.
#include <iostream>

#include "common.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv,
      "Ablation 5 — tree vs tree-adaptive (precision feedback)");

  util::TextTable table({"trace", "policy", "miss rate", "prefetches",
                         "pf hit rate", "traffic vs misses"});
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    for (const auto kind : {core::policy::PolicyKind::kTree,
                            core::policy::PolicyKind::kTreeAdaptive}) {
      sim::SimConfig config;
      config.cache_blocks = 1024;
      config.policy = bench::spec_of(kind);
      const auto r = sim::simulate(config, *t);
      // (built via insert: GCC 12's -Wrestrict false-positives on
      // literal + std::string temporaries at -O3)
      std::string traffic =
          util::format_percent(r.metrics.prefetch_traffic_ratio());
      traffic.insert(traffic.begin(), '+');
      table.row({t->name(), r.policy_name,
                 util::format_percent(r.metrics.miss_rate()),
                 util::format_count(r.metrics.policy.prefetches_issued),
                 util::format_percent(r.metrics.prefetch_cache_hit_rate()),
                 traffic});
    }
  }
  table.print(std::cout);
  return 0;
}
