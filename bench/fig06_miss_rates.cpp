// Figure 6: combined-cache miss rate vs cache size for the four headline
// schemes (no-prefetch, next-limit, tree, tree-next-limit) on each trace.
//
// Paper shape to reproduce: tree-next-limit lowest (or tied) everywhere;
// next-limit ~ no-prefetch on CAD while tree cuts CAD misses up to ~36 %;
// next-limit cuts sitar misses up to ~73 %; all gaps shrink as the cache
// grows.
#include "common.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv,
      "Figure 6 — miss rate vs cache size, four schemes x four traces");

  std::vector<core::policy::PolicySpec> policies;
  for (const auto kind : core::policy::headline_policies()) {
    policies.push_back(bench::spec_of(kind));
  }

  std::vector<sim::RunSpec> specs;
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    const auto g = sim::grid(*t, env.cache_sizes, policies);
    specs.insert(specs.end(), g.begin(), g.end());
  }
  const auto results = bench::run_all(specs);
  bench::emit(
      env, results,
      [](const sim::Result& r) { return r.metrics.miss_rate(); },
      "miss rate (Figure 6)", /*percent=*/true);
  return 0;
}
