// Google-benchmark microbenchmarks of the performance-critical pieces:
// the LZ tree parse, candidate enumeration, cache operations, and whole-
// simulator throughput per policy.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "cache/buffer_cache.hpp"
#include "cache/lru_cache.hpp"
#include "core/tree/enumerator.hpp"
#include "core/tree/prefetch_tree.hpp"
#include "engine/prefetch_engine.hpp"
#include "engine/sharded_engine.hpp"
#include "sim/simulator.hpp"
#include "trace/gen_cad.hpp"
#include "util/prng.hpp"

namespace {

using namespace pfp;

const trace::Trace& cad_trace() {
  static const trace::Trace t = [] {
    trace::CadGenerator::Config config;
    config.references = 100'000;
    return trace::CadGenerator(config).generate();
  }();
  return t;
}

void BM_TreeParse(benchmark::State& state) {
  const auto& t = cad_trace();
  for (auto _ : state) {
    core::tree::PrefetchTree tree;
    for (const auto& r : t) {
      benchmark::DoNotOptimize(tree.access(r.block));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_TreeParse)->Unit(benchmark::kMillisecond);

void BM_TreeParseBounded(benchmark::State& state) {
  const auto& t = cad_trace();
  core::tree::TreeConfig config;
  config.max_nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::tree::PrefetchTree tree(config);
    for (const auto& r : t) {
      benchmark::DoNotOptimize(tree.access(r.block));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_TreeParseBounded)->Arg(4096)->Arg(32768)
    ->Unit(benchmark::kMillisecond);

void BM_EdgeLookup(benchmark::State& state) {
  const auto& t = cad_trace();
  core::tree::PrefetchTree tree;
  for (const auto& r : t) {
    tree.access(r.block);
  }
  util::Xoshiro256 rng(3);
  std::vector<trace::BlockId> probes;
  probes.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    probes.push_back(t[rng.below(t.size())].block);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.find_child(tree.root(), probes[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EdgeLookup);

void BM_EnumerateCandidates(benchmark::State& state) {
  const auto& t = cad_trace();
  core::tree::PrefetchTree tree;
  for (const auto& r : t) {
    tree.access(r.block);
  }
  core::tree::EnumeratorLimits limits;
  // Walk the parse along the trace while enumerating, to sample realistic
  // positions rather than just the root.
  std::size_t i = 0;
  for (auto _ : state) {
    tree.access(t[i % t.size()].block);
    benchmark::DoNotOptimize(
        core::tree::enumerate_candidates(tree, tree.current(), limits));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EnumerateCandidates);

void BM_EnumerateCandidatesReuse(benchmark::State& state) {
  // Same walk as BM_EnumerateCandidates but through one reused
  // CandidateEnumerator, i.e. the policy hot path's allocation-free mode;
  // the gap between the two benchmarks is the one-shot setup cost.
  const auto& t = cad_trace();
  core::tree::PrefetchTree tree;
  for (const auto& r : t) {
    tree.access(r.block);
  }
  core::tree::EnumeratorLimits limits;
  core::tree::CandidateEnumerator enumerator;
  std::size_t i = 0;
  for (auto _ : state) {
    tree.access(t[i % t.size()].block);
    benchmark::DoNotOptimize(
        enumerator.enumerate(tree, tree.current(), limits));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EnumerateCandidatesReuse);

void BM_EnumerateCandidatesCached(benchmark::State& state) {
  // Enumerates repeatedly from a fixed position of an unchanging tree:
  // after the first call every enumeration is a verbatim cache hit, i.e.
  // the epoch-check + return-span fast path of the incremental engine.
  const auto& t = cad_trace();
  core::tree::PrefetchTree tree;
  for (const auto& r : t) {
    tree.access(r.block);
  }
  core::tree::EnumeratorLimits limits;
  core::tree::CandidateEnumerator enumerator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        enumerator.enumerate(tree, tree.root(), limits));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EnumerateCandidatesCached);

void BM_SnapshotRestore(benchmark::State& state) {
  // Full engine snapshot -> restore round trip over a trained tree: the
  // preorder serialization walk streams child runs straight out of the
  // arena, and restore rebuilds the SoA planes node by node.  items/s is
  // round trips; the label carries the snapshot size so regressions in
  // the wire format show up alongside throughput ones.
  const auto& t = cad_trace();
  engine::EngineConfig config;
  config.cache_blocks = 1024;
  config.policy.kind = core::policy::PolicyKind::kTreeNextLimit;
  engine::PrefetchEngine trained(config);
  trained.run_trace(t);
  std::string bytes;
  {
    std::ostringstream out;
    trained.snapshot(out);
    bytes = std::move(out).str();
  }
  for (auto _ : state) {
    std::ostringstream out;
    trained.snapshot(out);
    std::istringstream in(std::move(out).str());
    engine::PrefetchEngine fresh(config);
    fresh.restore(in);
    benchmark::DoNotOptimize(fresh.stats());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
  state.SetLabel("snapshot_bytes=" + std::to_string(bytes.size()));
}
BENCHMARK(BM_SnapshotRestore)->Unit(benchmark::kMillisecond);

void BM_LruCacheAccess(benchmark::State& state) {
  cache::LruCache cache(static_cast<std::size_t>(state.range(0)));
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.below(100'000)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruCacheAccess)->Arg(1024)->Arg(16384);

void BM_DemandCacheHitWithDepth(benchmark::State& state) {
  cache::BufferCache cache(1024);
  for (trace::BlockId b = 0; b < 1024; ++b) {
    cache.admit_demand(b);
  }
  util::Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.below(1024)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DemandCacheHitWithDepth);

void BM_SimulatorThroughput(benchmark::State& state) {
  const auto& t = cad_trace();
  const auto kind =
      static_cast<core::policy::PolicyKind>(state.range(0));
  for (auto _ : state) {
    sim::SimConfig config;
    config.cache_blocks = 1024;
    config.policy.kind = kind;
    benchmark::DoNotOptimize(sim::simulate(config, t));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
  state.SetLabel(core::policy::kind_name(kind));
}
BENCHMARK(BM_SimulatorThroughput)
    ->Arg(static_cast<int>(core::policy::PolicyKind::kNoPrefetch))
    ->Arg(static_cast<int>(core::policy::PolicyKind::kNextLimit))
    ->Arg(static_cast<int>(core::policy::PolicyKind::kTree))
    ->Arg(static_cast<int>(core::policy::PolicyKind::kTreeNextLimit))
    ->Arg(static_cast<int>(core::policy::PolicyKind::kTreeLvc))
    ->Arg(static_cast<int>(core::policy::PolicyKind::kPerfectSelector))
    ->Arg(static_cast<int>(core::policy::PolicyKind::kTreeThreshold))
    ->Arg(static_cast<int>(core::policy::PolicyKind::kTreeChildren))
    ->Arg(static_cast<int>(core::policy::PolicyKind::kTreeAdaptive))
    ->Arg(static_cast<int>(core::policy::PolicyKind::kProbGraph))
    ->Arg(static_cast<int>(core::policy::PolicyKind::kMarkov))
    ->Arg(static_cast<int>(core::policy::PolicyKind::kAssoc))
    ->Unit(benchmark::kMillisecond);

// Single-engine access throughput at each observability level.  Arg(0)
// is the baseline (counters only — the always-on cost of a PFP_OBS
// build), Arg(1) adds the six phase timers (one steady_clock read per
// stage boundary), Arg(2) adds a 4096-event trace ring on top.  The
// items/s spread between the args IS the measured obs overhead quoted
// in docs/observability.md; in a -DPFP_OBS=OFF build all three args
// measure the same zero-instrumentation engine.
void BM_EngineObsOverhead(benchmark::State& state) {
  const auto& t = cad_trace();
  const auto level = state.range(0);
  for (auto _ : state) {
    engine::EngineConfig config;
    config.cache_blocks = 1024;
    config.policy.kind = core::policy::PolicyKind::kTreeNextLimit;
    config.obs.phase_timers = level >= 1;
    config.obs.trace_capacity = level >= 2 ? 4096 : 0;
    engine::PrefetchEngine eng(config);
    eng.run_trace(t);
    benchmark::DoNotOptimize(eng.metrics());
    benchmark::DoNotOptimize(eng.stats());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
  state.SetLabel(level == 0 ? "counters"
                            : (level == 1 ? "counters+phases"
                                          : "counters+phases+trace"));
}
BENCHMARK(BM_EngineObsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

const std::vector<trace::BlockId>& cad_blocks() {
  static const std::vector<trace::BlockId> blocks = [] {
    std::vector<trace::BlockId> out;
    out.reserve(cad_trace().size());
    for (const auto& record : cad_trace().records()) {
      out.push_back(record.block);
    }
    return out;
  }();
  return blocks;
}

// Shared config for the sharded-throughput family: run routing (the
// stream is dealt to the shards in 4096-reference runs, so each shard's
// predictor sees real traversal sequences and every run is one bulk ring
// transaction) with each shard provisioning its own full-size buffer
// pool, the scale-out-replicas shape ShardedConfig documents
// (cache_blocks is PER SHARD).  BENCH_05-era runs hash-partitioned the
// block space and split one 1024-block budget across the shards; that
// configuration is kept measurable as BM_ShardedThroughputHashed below —
// the gap between the two is predictor-locality tax, not hand-off cost
// (docs/perf.md, "Batched hand-off").
engine::ShardedConfig sharded_bench_config(std::uint32_t shards) {
  engine::ShardedConfig config;
  config.engine.cache_blocks = 1024;
  config.engine.policy.kind = core::policy::PolicyKind::kTreeNextLimit;
  config.shards = shards;
  config.routing = engine::Routing::kRuns;
  config.run_length = 4096;
  // Deep rings decouple the producer from the workers: on a single-core
  // host a shallow ring forces a context switch every few thousand
  // references, and each switch between shard working sets evicts the
  // previous shard's tree/cache lines — measured as a ~25% aggregate
  // loss at 4096 slots.  At this depth each worker drains its backlog
  // in long uninterrupted stints, so the benchmark measures the state
  // machine and the hand-off, not scheduler churn.
  config.queue_capacity = 32768;
  return config;
}

// Aggregate throughput of the sharded engine on the batched hand-off
// path: one producer routing the CAD trace through access_many()
// (per-shard staging buffers, bulk ring transactions), N worker threads
// pulling variable-size runs and running the full per-access state
// machine through the engine's batched loop.  items/s is the aggregate
// access rate; compare Arg(N) against Arg(1) for the scale-out factor.
// NOTE: scaling requires real cores — on a single-core host the workers
// serialize, but run routing + the bulk hand-off keep the aggregate at
// the single-engine state-machine rate instead of BENCH_05's ~2.6x
// collapse (BENCH_06 vs BENCH_05 in docs/perf.md).
void BM_ShardedThroughput(benchmark::State& state) {
  const auto& blocks = cad_blocks();
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    engine::ShardedEngine eng(sharded_bench_config(shards));
    eng.access_many(blocks);
    eng.flush();
    benchmark::DoNotOptimize(eng.merged_metrics());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks.size()));
}
BENCHMARK(BM_ShardedThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Push-one hand-off for the same workload and config, kept as the
// baseline the batched BM_ShardedThroughput is measured against: every
// reference pays a full try_push + per-access pop on the ring.
void BM_ShardedThroughputPushOne(benchmark::State& state) {
  const auto& t = cad_trace();
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    engine::ShardedEngine eng(sharded_bench_config(shards));
    for (const auto& record : t.records()) {
      eng.push(record.block);
    }
    eng.flush();
    benchmark::DoNotOptimize(eng.merged_metrics());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_ShardedThroughputPushOne)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The BENCH_05-era configuration: hash-partitioned block space with one
// 1024-block buffer budget split across the shards, now on the batched
// hand-off.  Kept so the predictor-locality tax of key partitioning
// stays measured — this number barely moves between push-one and
// batched hand-off because the state machine, not the ring, dominates.
void BM_ShardedThroughputHashed(benchmark::State& state) {
  const auto& blocks = cad_blocks();
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    engine::ShardedConfig config;
    config.engine.cache_blocks = 1024 / shards;
    config.engine.policy.kind = core::policy::PolicyKind::kTreeNextLimit;
    config.shards = shards;
    engine::ShardedEngine eng(config);
    eng.access_many(blocks);
    eng.flush();
    benchmark::DoNotOptimize(eng.merged_metrics());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks.size()));
}
BENCHMARK(BM_ShardedThroughputHashed)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Single-engine batched vs push-one: the same trace fed through
// access() one block at a time (Arg 0) and through access_many() in one
// span (Arg 1).  The spread is the per-access setup the batched loop
// hoists — context build, dispatch resolution, per-access observability
// publish — with no queues involved; metrics are bit-identical by the
// access_many() contract.
void BM_AccessMany(benchmark::State& state) {
  const auto& blocks = cad_blocks();
  const bool batched = state.range(0) != 0;
  for (auto _ : state) {
    engine::EngineConfig config;
    config.cache_blocks = 1024;
    config.policy.kind = core::policy::PolicyKind::kTreeNextLimit;
    engine::PrefetchEngine eng(config);
    if (batched) {
      benchmark::DoNotOptimize(eng.access_many(blocks));
    } else {
      for (const trace::BlockId block : blocks) {
        benchmark::DoNotOptimize(eng.access(block));
      }
    }
    benchmark::DoNotOptimize(eng.metrics());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks.size()));
  state.SetLabel(batched ? "access_many" : "push_one");
}
BENCHMARK(BM_AccessMany)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Zipf hot-key mitigation head-to-head: a skewed stream (a handful of
// hot blocks carrying half the references, the rest uniform) routed
// through the batched hand-off under each HotKeyStrategy.  Arg 0 =
// kNone, 1 = kBatchRuns, 2 = kRebalance.  The comparison table in
// docs/perf.md is generated from these numbers.
void BM_ShardedHotKeys(benchmark::State& state) {
  static const std::vector<trace::BlockId> zipf = [] {
    std::vector<trace::BlockId> out;
    out.reserve(100'000);
    util::Xoshiro256 rng(11);
    for (int i = 0; i < 100'000; ++i) {
      if (rng.below(2) == 0) {
        out.push_back(rng.below(8));  // 8 hot blocks, half the stream
      } else {
        out.push_back(8 + rng.below(100'000));
      }
    }
    return out;
  }();
  const auto strategy =
      static_cast<engine::HotKeyStrategy>(state.range(0));
  for (auto _ : state) {
    engine::ShardedConfig config;
    config.engine.cache_blocks = 256;
    config.engine.policy.kind = core::policy::PolicyKind::kTreeNextLimit;
    config.shards = 4;
    config.hot_keys = strategy;
    engine::ShardedEngine eng(config);
    eng.access_many(zipf);
    eng.flush();
    benchmark::DoNotOptimize(eng.merged_metrics());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(zipf.size()));
  state.SetLabel(state.range(0) == 0
                     ? "none"
                     : (state.range(0) == 1 ? "batch_runs" : "rebalance"));
}
BENCHMARK(BM_ShardedHotKeys)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
