// Table 1: the trace inventory — reference counts, first-level cache
// sizes, and structural characterization of the synthetic reproductions
// (so they can be compared against the targets in DESIGN.md).
#include <iostream>

#include "common.hpp"
#include "trace/characterize.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv, "Table 1 — trace inventory and characterization");

  util::TextTable table({"trace", "references", "unique blocks", "L1 filter",
                         "sequential", "reuse", "mean run len"});
  for (const trace::Workload w : trace::all_workloads()) {
    const trace::Trace& t = bench::load_workload(env, w);
    const auto profile = trace::characterize(t);
    const auto l1 = trace::workload_l1_blocks(w);
    table.row({t.name(), util::format_count(profile.references),
               util::format_count(profile.unique_blocks),
               l1 == 0 ? std::string("none")
                       : util::format_count(l1) + " blocks",
               util::format_percent(profile.sequential_fraction),
               util::format_percent(profile.reuse_fraction),
               util::format_double(profile.mean_run_length, 2)});
  }
  table.print(std::cout);
  std::cout << "\nPaper originals: cello 3,530,115 refs (30 MB L1); snake "
               "3,867,475 refs (5 MB L1);\nCAD 147,345 refs; sitar 664,867 "
               "refs.  Synthetic traces are scaled per DESIGN.md.\n";
  return 0;
}
