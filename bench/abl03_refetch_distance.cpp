// Ablation: the re-prefetch distance x in Eq. 11.
//
// The paper leaves x (the distance at which an ejected block would be
// prefetched again) unspecified; DESIGN.md's default is
// x = min(d_b - 1, prefetch horizon).  This bench compares that rule with
// the two extremes.  The rules only diverge when depth > 1 candidates are
// profitable, i.e. when stalls exist — so the sweep runs at a small
// compute/IO ratio as well as the paper's default.
#include <iostream>

#include "common.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv, "Ablation 3 — Eq. 11 re-prefetch distance rule");

  struct Rule {
    core::policy::RefetchDistanceRule rule;
    const char* name;
  };
  const Rule rules[] = {
      {core::policy::RefetchDistanceRule::kHorizon, "x=min(d-1,horizon)"},
      {core::policy::RefetchDistanceRule::kParentDepth, "x=d-1"},
      {core::policy::RefetchDistanceRule::kImmediate, "x=0"},
  };

  for (const double t_cpu : {1.0, 50.0}) {
    std::cout << "\n-- T_cpu = " << util::format_double(t_cpu, 0)
              << " ms --\n";
    util::TextTable table({"trace", "rule", "miss rate", "pf ejections",
                           "pf hit rate"});
    for (const trace::Trace* t : bench::load_all_workloads(env)) {
      for (const Rule& rule : rules) {
        sim::SimConfig config;
        // Small cache: ejection pricing only matters when the pool is
        // contended enough that prefetched blocks actually get ejected.
        config.cache_blocks = 256;
        config.timing.t_cpu = t_cpu;
        config.policy = bench::spec_of(core::policy::PolicyKind::kTree);
        config.policy.tree.refetch = rule.rule;
        const auto r = sim::simulate(config, *t);
        table.row({t->name(), rule.name,
                   util::format_percent(r.metrics.miss_rate()),
                   util::format_count(r.metrics.policy.prefetch_ejections),
                   util::format_percent(
                       r.metrics.prefetch_cache_hit_rate())});
      }
    }
    table.print(std::cout);
  }
  std::cout << "\nAt the paper's T_cpu = 50 ms all profitable candidates "
               "sit at depth 1 and the\nrules coincide; the choice only "
               "matters in stall-bound regimes.\n";
  return 0;
}
