// Figure 14: of the accesses the tree could predict (a child of the
// current parse node), what fraction were NOT already cached — the head-
// room left for a better candidate-selection scheme.
//
// Paper shape: low (~15 %) for snake/CAD/sitar — the tree identifies the
// right candidates but most are already resident — and higher for cello.
#include "common.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv,
      "Figure 14 — % of predictable blocks not already cached (tree)");

  const std::vector<core::policy::PolicySpec> policies = {
      bench::spec_of(core::policy::PolicyKind::kTree)};
  std::vector<sim::RunSpec> specs;
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    const auto g = sim::grid(*t, env.cache_sizes, policies);
    specs.insert(specs.end(), g.begin(), g.end());
  }
  const auto results = bench::run_all(specs);
  bench::emit(
      env, results,
      [](const sim::Result& r) {
        return r.metrics.predictable_uncached_fraction();
      },
      "predictable blocks not cached (Figure 14)", /*percent=*/true);
  return 0;
}
