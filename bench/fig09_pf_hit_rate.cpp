// Figure 9: prefetch-cache hit rate (fraction of prefetched blocks that
// are referenced before ejection) vs cache size, under the tree scheme.
//
// Paper shape: CAD far above the disk-level traces — its prefetched
// blocks carry much higher probabilities (Figure 10) so they almost
// always get used.
#include "common.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv, "Figure 9 — prefetch cache hit rate (tree)");

  const std::vector<core::policy::PolicySpec> policies = {
      bench::spec_of(core::policy::PolicyKind::kTree)};
  std::vector<sim::RunSpec> specs;
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    const auto g = sim::grid(*t, env.cache_sizes, policies);
    specs.insert(specs.end(), g.begin(), g.end());
  }
  const auto results = bench::run_all(specs);
  bench::emit(
      env, results,
      [](const sim::Result& r) { return r.metrics.prefetch_cache_hit_rate(); },
      "prefetch cache hit rate (Figure 9)", /*percent=*/true);
  return 0;
}
