// Table 4: best vs worst tree-threshold performance over a threshold
// sweep — showing the parametric scheme's sensitivity to tuning (up to
// ~15 % worse at a mischosen threshold in the paper), which the cost-
// benefit tree avoids.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv, "Table 4 — best/worst tree-threshold miss rates");

  const std::vector<double> thresholds = {0.001, 0.002, 0.008, 0.025, 0.05,
                                          0.1,   0.2,   0.4};

  util::TextTable table({"trace", "best miss", "best p", "worst miss",
                         "worst p", "difference", "tree (cost-benefit)"});
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    std::vector<sim::RunSpec> specs;
    for (const double threshold : thresholds) {
      sim::RunSpec spec;
      spec.trace = t;
      spec.config.cache_blocks = 1024;
      spec.config.policy =
          bench::spec_of(core::policy::PolicyKind::kTreeThreshold);
      spec.config.policy.threshold = threshold;
      specs.push_back(spec);
    }
    sim::RunSpec tree;
    tree.trace = t;
    tree.config.cache_blocks = 1024;
    tree.config.policy = bench::spec_of(core::policy::PolicyKind::kTree);
    specs.push_back(tree);

    const auto results = bench::run_all(specs);
    double best = 1.0;
    double worst = 0.0;
    double best_p = 0.0;
    double worst_p = 0.0;
    double tree_miss = 0.0;
    for (const auto& r : results) {
      if (r.policy_name == "tree") {
        tree_miss = r.metrics.miss_rate();
        continue;
      }
      const double miss = r.metrics.miss_rate();
      if (miss < best) {
        best = miss;
        best_p = r.config.policy.threshold;
      }
      if (miss > worst) {
        worst = miss;
        worst_p = r.config.policy.threshold;
      }
    }
    table.row({t->name(), util::format_percent(best),
               util::format_double(best_p, 3), util::format_percent(worst),
               util::format_double(worst_p, 3),
               util::format_percent(best > 0 ? (worst - best) / best : 0.0),
               util::format_percent(tree_miss)});
  }
  table.print(std::cout);
  std::cout << "\nPaper (Table 4, relative worst-vs-best gap): cello 1.60%, "
               "snake 15.12%, CAD 15.11%, sitar 10.95%.\n";
  return 0;
}
