// Figure 17: cost-benefit tree vs the BEST tuned tree-threshold and
// tree-children configurations (cello and snake in the paper; all four
// traces here), across cache sizes.
//
// Paper shape: tree, with no tuning, matches the best hand-tuned
// parametric scheme on each trace.
#include <iostream>
#include <map>

#include "common.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv,
      "Figure 17 — tree vs best tree-threshold / tree-children");

  const std::vector<double> thresholds = {0.001, 0.002, 0.008, 0.025,
                                          0.05,  0.1,   0.2};
  const std::vector<std::uint32_t> child_counts = {1, 3, 5, 10};
  const std::vector<std::size_t> cache_sizes = {256, 1024, 4096};

  for (const trace::Workload w :
       {trace::Workload::kCello, trace::Workload::kSnake,
        trace::Workload::kCad, trace::Workload::kSitar}) {
    const trace::Trace& t = bench::load_workload(env, w);
    std::vector<sim::RunSpec> specs;
    for (const std::size_t blocks : cache_sizes) {
      sim::RunSpec base;
      base.trace = &t;
      base.config.cache_blocks = blocks;
      base.config.policy = bench::spec_of(core::policy::PolicyKind::kTree);
      specs.push_back(base);
      for (const double threshold : thresholds) {
        sim::RunSpec s = base;
        s.config.policy =
            bench::spec_of(core::policy::PolicyKind::kTreeThreshold);
        s.config.policy.threshold = threshold;
        specs.push_back(s);
      }
      for (const std::uint32_t k : child_counts) {
        sim::RunSpec s = base;
        s.config.policy =
            bench::spec_of(core::policy::PolicyKind::kTreeChildren);
        s.config.policy.children = k;
        specs.push_back(s);
      }
    }
    const auto results = bench::run_all(specs);

    std::cout << "\n== " << trace::workload_name(w) << " ==\n";
    util::TextTable table({"cache(blocks)", "tree", "best tree-threshold",
                           "best tree-children"});
    for (const std::size_t blocks : cache_sizes) {
      double tree = 1.0;
      double best_threshold = 1.0;
      double best_children = 1.0;
      std::string threshold_param = "-";
      std::string children_param = "-";
      for (const auto& r : results) {
        if (r.config.cache_blocks != blocks) {
          continue;
        }
        const double miss = r.metrics.miss_rate();
        if (r.policy_name == "tree") {
          tree = miss;
        } else if (r.policy_name.starts_with("tree-threshold")) {
          if (miss < best_threshold) {
            best_threshold = miss;
            threshold_param =
                util::format_double(r.config.policy.threshold, 3);
          }
        } else if (r.policy_name.starts_with("tree-children")) {
          if (miss < best_children) {
            best_children = miss;
            children_param = std::to_string(r.config.policy.children);
          }
        }
      }
      table.row({std::to_string(blocks), util::format_percent(tree),
                 util::format_percent(best_threshold) + " (p=" +
                     threshold_param + ")",
                 util::format_percent(best_children) + " (k=" +
                     children_param + ")"});
    }
    table.print(std::cout);
  }
  return 0;
}
