#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>

#include "util/string_utils.hpp"

namespace pfp::bench {

BenchEnv parse_bench_args(int argc, char** argv,
                          const std::string& description) {
  BenchEnv env;
  env.options.add("refs", "0",
                  "post-filter references per workload (0 = paper-scaled "
                  "defaults)");
  env.options.add("seed", "0", "workload seed perturbation");
  env.options.add("csv", "", "also write the full per-run CSV to this path");
  env.options.add("sizes", "128,256,512,1024,2048,4096,8192",
                  "comma-separated cache sizes in blocks");
  if (!env.options.parse(argc, argv)) {
    std::exit(0);
  }
  env.seed = env.options.u64("seed");
  env.refs_override = env.options.u64("refs");
  env.csv_path = env.options.str("csv");
  for (const auto& field : util::split(env.options.str("sizes"), ',')) {
    const auto value = util::parse_u64(util::trim(field));
    if (!value || *value < 2) {
      std::fprintf(stderr, "bad cache size '%s'\n",
                   std::string(field).c_str());
      std::exit(2);
    }
    env.cache_sizes.push_back(static_cast<std::size_t>(*value));
  }
  std::cout << description << "\n";
  return env;
}

const trace::Trace& load_workload(const BenchEnv& env, trace::Workload w) {
  struct Key {
    trace::Workload workload;
    std::uint64_t refs;
    std::uint64_t seed;
    bool operator<(const Key& o) const {
      return std::tie(workload, refs, seed) <
             std::tie(o.workload, o.refs, o.seed);
    }
  };
  static std::map<Key, trace::Trace> cache;
  const std::uint64_t refs = env.refs_override != 0
                                 ? env.refs_override
                                 : sim::default_references(w);
  const Key key{w, refs, env.seed};
  auto it = cache.find(key);
  if (it == cache.end()) {
    std::cerr << "[bench] generating " << trace::workload_name(w) << " ("
              << util::format_count(refs) << " refs)\n";
    it = cache.emplace(key, trace::make_workload(w, refs, env.seed)).first;
  }
  return it->second;
}

std::vector<const trace::Trace*> load_all_workloads(const BenchEnv& env) {
  std::vector<const trace::Trace*> out;
  for (const trace::Workload w : trace::all_workloads()) {
    out.push_back(&load_workload(env, w));
  }
  return out;
}

std::vector<sim::Result> run_all(const std::vector<sim::RunSpec>& specs) {
  std::cerr << "[bench] running " << specs.size() << " simulations\n";
  return sim::run_serial(specs);
}

core::policy::PolicySpec spec_of(core::policy::PolicyKind kind) {
  core::policy::PolicySpec spec;
  spec.kind = kind;
  return spec;
}

void emit(const BenchEnv& env, const std::vector<sim::Result>& results,
          const sim::MetricFn& metric, const std::string& metric_name,
          bool percent) {
  sim::print_series_by_cache_size(std::cout, results, metric, metric_name,
                                  percent);
  if (sim::maybe_write_csv(env.csv_path, results)) {
    std::cout << "\n(full CSV written to " << env.csv_path << ")\n";
  }
}

}  // namespace pfp::bench
