// Figure 16: fraction of last-visited children already cached when the
// tree scheme visits their parent node — the reason prefetching the
// last-visited child (tree-lvc) buys nothing.
//
// Paper shape: above ~85 % for most cache sizes.
#include <iostream>

#include "common.hpp"
#include "util/string_utils.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv,
      "Figure 16 — % of last-visited children already cached (tree)");

  const std::vector<core::policy::PolicySpec> policies = {
      bench::spec_of(core::policy::PolicyKind::kTree)};
  std::vector<sim::RunSpec> specs;
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    const auto g = sim::grid(*t, env.cache_sizes, policies);
    specs.insert(specs.end(), g.begin(), g.end());
  }
  const auto results = bench::run_all(specs);
  bench::emit(
      env, results,
      [](const sim::Result& r) { return r.metrics.lvc_cached_fraction(); },
      "last-visited children already cached (Figure 16)", /*percent=*/true);

  // Section 9.6's conclusion check: tree-lvc vs tree at one size.
  std::vector<sim::RunSpec> cmp;
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    for (const auto kind : {core::policy::PolicyKind::kTree,
                            core::policy::PolicyKind::kTreeLvc}) {
      sim::RunSpec spec;
      spec.trace = t;
      spec.config.cache_blocks = 1024;
      spec.config.policy = bench::spec_of(kind);
      cmp.push_back(spec);
    }
  }
  const auto cmp_results = bench::run_all(cmp);
  std::cout << "\ntree vs tree-lvc miss rates @1024 blocks (Section 9.6: "
               "no noticeable difference expected):\n";
  for (const auto& r : cmp_results) {
    std::cout << "  " << r.trace_name << " " << r.policy_name << ": "
              << util::format_percent(r.metrics.miss_rate()) << "\n";
  }
  return 0;
}
