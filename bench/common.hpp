// Shared scaffolding for the paper-reproduction bench binaries.
//
// Every bench follows the same shape: parse --refs/--seed/--csv/--sizes,
// build the four workloads once, run a grid of simulations, print the
// exhibit's series as an aligned table (and optionally CSV).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "trace/workloads.hpp"
#include "util/options.hpp"

namespace pfp::bench {

struct BenchEnv {
  util::Options options;
  std::uint64_t seed = 0;
  /// Post-filter reference count override; 0 = paper-scaled defaults.
  std::uint64_t refs_override = 0;
  std::string csv_path;
  std::vector<std::size_t> cache_sizes;
};

/// Registers the common options and parses argv; exits(0) on --help,
/// exits(2) on bad input.  `description` heads the bench's output.
BenchEnv parse_bench_args(int argc, char** argv,
                          const std::string& description);

/// Builds a workload at the bench's scale (cached per process).
const trace::Trace& load_workload(const BenchEnv& env, trace::Workload w);

/// All four paper workloads in Table 1 order.
std::vector<const trace::Trace*> load_all_workloads(const BenchEnv& env);

/// Runs all specs serially with a one-line progress note per run batch.
std::vector<sim::Result> run_all(const std::vector<sim::RunSpec>& specs);

/// PolicySpec shorthand.
core::policy::PolicySpec spec_of(core::policy::PolicyKind kind);

/// Prints one metric as a per-trace series table and writes CSV if asked.
void emit(const BenchEnv& env, const std::vector<sim::Result>& results,
          const sim::MetricFn& metric, const std::string& metric_name,
          bool percent);

}  // namespace pfp::bench
