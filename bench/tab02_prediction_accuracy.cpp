// Table 2: prediction accuracy — the fraction of accesses present as a
// child of the current prefetch-tree node.
//
// Paper values: cello 35.78 %, snake 61.50 %, CAD 59.90 %, sitar 71.39 %.
#include <iostream>
#include <map>

#include "common.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv, "Table 2 — prediction accuracy of the prefetch tree");

  std::vector<sim::RunSpec> specs;
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    sim::RunSpec spec;
    spec.trace = t;
    spec.config.cache_blocks = 1024;
    spec.config.policy = bench::spec_of(core::policy::PolicyKind::kTree);
    specs.push_back(spec);
  }
  const auto results = bench::run_all(specs);

  const std::map<std::string, double> paper = {
      {"cello", 0.3578}, {"snake", 0.6150}, {"cad", 0.5990},
      {"sitar", 0.7139}};
  util::TextTable table(
      {"trace", "prediction accuracy", "paper (Table 2)"});
  for (const auto& r : results) {
    table.row({r.trace_name,
               util::format_percent(r.metrics.prediction_accuracy()),
               util::format_percent(paper.at(r.trace_name))});
  }
  table.print(std::cout);
  if (sim::maybe_write_csv(env.csv_path, results)) {
    std::cout << "(full CSV written to " << env.csv_path << ")\n";
  }
  return 0;
}
