// Ablation: LZ tree vs first-order probability graph.
//
// The LZ prefetch tree (Vitter/Krishnan/Curewitz) keeps variable-depth
// context; a first-order probability graph (Griffioen & Appleton style,
// the paper's reference [6]) keeps one block of context.  This bench
// measures what the extra context buys on each workload — and where the
// simple graph is already enough.
#include "common.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv,
      "Ablation 2 — LZ tree vs first-order probability graph");

  std::vector<core::policy::PolicySpec> policies = {
      bench::spec_of(core::policy::PolicyKind::kNoPrefetch),
      bench::spec_of(core::policy::PolicyKind::kProbGraph),
      bench::spec_of(core::policy::PolicyKind::kTree),
  };
  std::vector<sim::RunSpec> specs;
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    const auto g = sim::grid(*t, {256, 1024, 4096}, policies);
    specs.insert(specs.end(), g.begin(), g.end());
  }
  const auto results = bench::run_all(specs);
  bench::emit(
      env, results,
      [](const sim::Result& r) { return r.metrics.miss_rate(); },
      "miss rate (predictor ablation)", /*percent=*/true);
  return 0;
}
