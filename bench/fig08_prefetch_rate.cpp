// Figure 8: blocks prefetched per access period (the measured s) vs cache
// size, under the tree scheme.
//
// Paper shape: more prefetching at small caches (up to ~2/access on
// snake, i.e. a 180 % traffic increase) declining to under one block
// every three access periods at large caches.
#include <iostream>

#include "common.hpp"
#include "util/string_utils.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv,
      "Figure 8 — blocks prefetched per access period (tree)");

  const std::vector<core::policy::PolicySpec> policies = {
      bench::spec_of(core::policy::PolicyKind::kTree)};
  std::vector<sim::RunSpec> specs;
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    const auto g = sim::grid(*t, env.cache_sizes, policies);
    specs.insert(specs.end(), g.begin(), g.end());
  }
  const auto results = bench::run_all(specs);
  bench::emit(
      env, results,
      [](const sim::Result& r) { return r.metrics.prefetches_per_access(); },
      "prefetches per access period (Figure 8)", /*percent=*/false);

  std::cout << "\nExtra disk traffic from prefetching (vs demand fetches):\n";
  for (const auto& r : results) {
    std::cout << "  " << r.trace_name << " @" << r.config.cache_blocks
              << ": +"
              << util::format_percent(r.metrics.prefetch_traffic_ratio())
              << "\n";
  }
  return 0;
}
