// Figure 13: tree miss rate as a fraction of no-prefetch miss rate while
// the prefetch tree's node budget varies (CAD trace), across cache sizes.
//
// Paper shape: performance saturates around 32K nodes — at 40 bytes per
// node about 1.25 MB of memory buys the full benefit of the scheme.
#include <iostream>

#include "common.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv,
      "Figure 13 — bounded-tree miss rate relative to no-prefetch (CAD)");

  const trace::Trace& cad = bench::load_workload(env, trace::Workload::kCad);
  const std::vector<std::size_t> budgets = {1'024,  2'048,  4'096, 8'192,
                                            16'384, 32'768, 0};  // 0 = inf
  const std::vector<std::size_t> cache_sizes = {256, 1024, 4096};

  // Baselines: no-prefetch per cache size.
  std::vector<sim::RunSpec> specs;
  for (const std::size_t blocks : cache_sizes) {
    sim::RunSpec spec;
    spec.trace = &cad;
    spec.config.cache_blocks = blocks;
    spec.config.policy = bench::spec_of(core::policy::PolicyKind::kNoPrefetch);
    specs.push_back(spec);
    for (const std::size_t budget : budgets) {
      sim::RunSpec tree = spec;
      tree.config.policy = bench::spec_of(core::policy::PolicyKind::kTree);
      tree.config.policy.tree.tree.max_nodes = budget;
      specs.push_back(tree);
    }
  }
  const auto results = bench::run_all(specs);

  util::TextTable table({"tree nodes", "memory (40 B/node)",
                         "rel. miss @256", "rel. miss @1024",
                         "rel. miss @4096"});
  for (const std::size_t budget : budgets) {
    std::vector<std::string> row;
    row.push_back(budget == 0 ? "unbounded" : util::format_count(budget));
    row.push_back(budget == 0
                      ? "-"
                      : util::format_bytes(static_cast<double>(budget) * 40));
    for (const std::size_t blocks : cache_sizes) {
      double base = 0.0;
      double tree = 0.0;
      for (const auto& r : results) {
        if (r.config.cache_blocks != blocks) {
          continue;
        }
        if (r.policy_name == "no-prefetch") {
          base = r.metrics.miss_rate();
        } else if (r.config.policy.tree.tree.max_nodes == budget) {
          tree = r.metrics.miss_rate();
        }
      }
      row.push_back(util::format_double(base > 0 ? tree / base : 0.0, 3));
    }
    table.row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(values < 1 mean the bounded tree still beats "
               "no-prefetch; saturation marks the needed memory)\n";
  if (sim::maybe_write_csv(env.csv_path, results)) {
    std::cout << "(full CSV written to " << env.csv_path << ")\n";
  }
  return 0;
}
