// Figure 7: fraction of prefetch candidates chosen by the cost-benefit
// algorithm that already reside in one of the caches, vs cache size.
//
// Paper shape: above ~2048 blocks more than 85 % of chosen candidates are
// already resident — the working sets fit, which is why the tree's
// advantage fades at large caches.
#include "common.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv,
      "Figure 7 — % of chosen prefetch candidates already cached (tree)");

  const std::vector<core::policy::PolicySpec> policies = {
      bench::spec_of(core::policy::PolicyKind::kTree)};
  std::vector<sim::RunSpec> specs;
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    const auto g = sim::grid(*t, env.cache_sizes, policies);
    specs.insert(specs.end(), g.begin(), g.end());
  }
  const auto results = bench::run_all(specs);
  bench::emit(
      env, results,
      [](const sim::Result& r) {
        return r.metrics.candidates_cached_fraction();
      },
      "candidates already cached (Figure 7)", /*percent=*/true);
  return 0;
}
