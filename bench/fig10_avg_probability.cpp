// Figure 10: mean tree-assigned probability of the blocks the cost-
// benefit scheme prefetches, vs cache size.
//
// Paper shape: CAD's prefetched blocks carry clearly higher probabilities
// than the other traces' — the explanation for its high prefetch-cache
// hit rate (Figure 9).
#include "common.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv, "Figure 10 — mean probability of prefetched blocks (tree)");

  const std::vector<core::policy::PolicySpec> policies = {
      bench::spec_of(core::policy::PolicyKind::kTree)};
  std::vector<sim::RunSpec> specs;
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    const auto g = sim::grid(*t, env.cache_sizes, policies);
    specs.insert(specs.end(), g.begin(), g.end());
  }
  const auto results = bench::run_all(specs);
  bench::emit(
      env, results,
      [](const sim::Result& r) {
        return r.metrics.mean_prefetch_probability();
      },
      "mean prefetched-block probability (Figure 10)", /*percent=*/false);
  return 0;
}
