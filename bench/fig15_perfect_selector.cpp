// Figure 15: no-prefetch vs tree vs perfect-selector miss rates — the
// oracle bound on what better candidate selection could achieve.
//
// Paper shape: perfect-selector reduces miss rates considerably below
// tree on every trace.
#include "common.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv,
      "Figure 15 — no-prefetch vs tree vs perfect-selector miss rates");

  const std::vector<core::policy::PolicySpec> policies = {
      bench::spec_of(core::policy::PolicyKind::kNoPrefetch),
      bench::spec_of(core::policy::PolicyKind::kTree),
      bench::spec_of(core::policy::PolicyKind::kPerfectSelector)};
  std::vector<sim::RunSpec> specs;
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    const auto g = sim::grid(*t, env.cache_sizes, policies);
    specs.insert(specs.end(), g.begin(), g.end());
  }
  const auto results = bench::run_all(specs);
  bench::emit(
      env, results,
      [](const sim::Result& r) { return r.metrics.miss_rate(); },
      "miss rate (Figure 15)", /*percent=*/true);
  return 0;
}
