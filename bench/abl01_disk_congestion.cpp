// Ablation: the infinite-disk assumption (Section 6.3).
//
// The paper assumes "an infinite number of available disks and no wait
// time for disk accesses" and notes prefetching increases disk traffic
// (Figure 8, +180 % on snake).  Here the assumption is relaxed: requests
// queue on a finite disk array, and the table shows how much of the
// prefetching speedup survives contention — the cost the paper's model
// ignores, quantified.
#include <iostream>

#include "common.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv,
      "Ablation 1 — prefetching speedup vs disk-array size (snake)");

  const trace::Trace& snake =
      bench::load_workload(env, trace::Workload::kSnake);
  const std::vector<std::uint32_t> disk_counts = {1, 2, 4, 8, 16, 0};

  util::TextTable table({"disks", "policy", "miss rate", "sim time (s)",
                         "stall (s)", "queue delay (s)",
                         "speedup vs no-prefetch"});
  for (const std::uint32_t disks : disk_counts) {
    double baseline_elapsed = 0.0;
    for (const auto kind : {core::policy::PolicyKind::kNoPrefetch,
                            core::policy::PolicyKind::kNextLimit,
                            core::policy::PolicyKind::kTreeNextLimit}) {
      sim::SimConfig config;
      config.cache_blocks = 1024;
      config.disks = disks;
      // I/O-bound regime: at the paper's T_cpu = 50 ms the CPU hides all
      // contention; 5 ms of compute per access makes the array the
      // bottleneck and exposes the assumption's cost.
      config.timing.t_cpu = 5.0;
      config.policy = bench::spec_of(kind);
      const auto r = sim::simulate(config, snake);
      if (kind == core::policy::PolicyKind::kNoPrefetch) {
        baseline_elapsed = r.metrics.elapsed_ms;
      }
      table.row({disks == 0 ? "inf" : std::to_string(disks), r.policy_name,
                 util::format_percent(r.metrics.miss_rate()),
                 util::format_double(r.metrics.elapsed_ms / 1000.0, 1),
                 util::format_double(r.metrics.stall_ms / 1000.0, 1),
                 util::format_double(
                     r.metrics.disk_queue_delay_ms / 1000.0, 1),
                 util::format_double(
                     baseline_elapsed / r.metrics.elapsed_ms, 2) + "x"});
    }
  }
  table.print(std::cout);
  std::cout << "\nPrefetch traffic queues behind demand traffic on small "
               "arrays: the miss-rate\nwin is unchanged (caching is "
               "time-independent) but the elapsed-time win shrinks\nas "
               "disks get scarce — the regime the paper's model excludes.\n";
  return 0;
}
