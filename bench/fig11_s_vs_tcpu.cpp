// Figure 11: s (blocks prefetched per access period) as T_cpu sweeps from
// 20 to 640 ms, CAD trace, 1024-block cache, tree scheme.
//
// Paper shape: s rises with T_cpu at first (more disk time can be hidden
// per period) then flattens once prefetch overhead and ejection cost cap
// the profitable amount of prefetching.
#include <iostream>

#include "common.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv,
      "Figure 11 — s vs T_cpu (CAD, 1024-block cache, tree)");

  const trace::Trace& cad = bench::load_workload(env, trace::Workload::kCad);
  std::vector<sim::RunSpec> specs;
  // The paper sweeps 20-640 ms; we extend below 15 ms because with the
  // published equations all stalls vanish once one period of compute
  // exceeds T_disk, so the rising region sits below 15 ms.
  for (const double t_cpu : {2.0, 5.0, 10.0, 20.0, 50.0, 160.0, 640.0}) {
    sim::RunSpec spec;
    spec.trace = &cad;
    spec.config.cache_blocks = 1024;
    spec.config.timing.t_cpu = t_cpu;
    spec.config.policy = bench::spec_of(core::policy::PolicyKind::kTree);
    specs.push_back(spec);
  }
  const auto results = bench::run_all(specs);

  util::TextTable table({"T_cpu(ms)", "s (prefetches/access)", "miss rate"});
  for (const auto& r : results) {
    table.row({util::format_double(r.config.timing.t_cpu, 0),
               util::format_double(r.metrics.prefetches_per_access(), 3),
               util::format_percent(r.metrics.miss_rate())});
  }
  table.print(std::cout);
  if (sim::maybe_write_csv(env.csv_path, results)) {
    std::cout << "(full CSV written to " << env.csv_path << ")\n";
  }
  return 0;
}
