// Table 3: how often the last-visited child of a node is the one accessed
// on the next visit to that node.
//
// Paper values: cello 24.37 %, snake 38.49 %, CAD 68.61 %, sitar 73.61 %.
#include <iostream>
#include <map>

#include "common.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv, "Table 3 — successive visits to the last-visited child");

  std::vector<sim::RunSpec> specs;
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    sim::RunSpec spec;
    spec.trace = t;
    spec.config.cache_blocks = 1024;
    spec.config.policy = bench::spec_of(core::policy::PolicyKind::kTree);
    specs.push_back(spec);
  }
  const auto results = bench::run_all(specs);

  const std::map<std::string, double> paper = {
      {"cello", 0.2437}, {"snake", 0.3849}, {"cad", 0.6861},
      {"sitar", 0.7361}};
  util::TextTable table({"trace", "LVC revisit rate", "paper (Table 3)"});
  for (const auto& r : results) {
    table.row({r.trace_name,
               util::format_percent(r.metrics.lvc_revisit_rate()),
               util::format_percent(paper.at(r.trace_name))});
  }
  table.print(std::cout);
  if (sim::maybe_write_csv(env.csv_path, results)) {
    std::cout << "(full CSV written to " << env.csv_path << ")\n";
  }
  return 0;
}
