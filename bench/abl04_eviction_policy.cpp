// Ablation: cost-based victim selection (Eqs. 11/13) vs recency rules.
//
// Section 6.2 notes the cost equations "also determine the best buffer to
// replace during a demand fetch".  This bench replaces that machinery
// with blind recency rules to measure what the pricing actually buys.
#include <iostream>

#include "common.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  auto env = bench::parse_bench_args(
      argc, argv, "Ablation 4 — victim selection rule for the tree policy");

  struct Rule {
    core::policy::ReclaimRule rule;
    const char* name;
  };
  const Rule rules[] = {
      {core::policy::ReclaimRule::kCostBased, "cost-based (paper)"},
      {core::policy::ReclaimRule::kPrefetchFirst, "prefetch-first"},
      {core::policy::ReclaimRule::kDemandFirst, "demand-first"},
  };

  util::TextTable table({"trace", "rule", "miss rate", "pf hit rate",
                         "pf ejections"});
  for (const trace::Trace* t : bench::load_all_workloads(env)) {
    for (const Rule& rule : rules) {
      sim::SimConfig config;
      config.cache_blocks = 1024;
      config.policy = bench::spec_of(core::policy::PolicyKind::kTree);
      config.policy.tree.reclaim = rule.rule;
      const auto r = sim::simulate(config, *t);
      table.row({t->name(), rule.name,
                 util::format_percent(r.metrics.miss_rate()),
                 util::format_percent(r.metrics.prefetch_cache_hit_rate()),
                 util::format_count(r.metrics.policy.prefetch_ejections)});
    }
  }
  table.print(std::cout);
  return 0;
}
